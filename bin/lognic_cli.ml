(* The lognic command-line tool: estimate / simulate / optimize /
   validate execution graphs written in the DSL, print the paper's
   parameter table, and regenerate evaluation figures. *)

open Cmdliner

let default_hardware =
  (* A generous SoC so graphs without a hardware statement still run. *)
  Lognic.Params.hardware
    ~bw_interface:(100. *. Lognic.Units.gbps)
    ~bw_memory:(100. *. Lognic.Units.gbps)

let load_document path =
  match Lognic_dsl.Parser.parse_file path with
  | Ok doc -> Ok doc
  | Error e -> Error (`Msg (Printf.sprintf "%s: %s" path e))

let resolve_traffic (doc : Lognic_dsl.Parser.document) rate packet =
  match (rate, packet, doc.traffic) with
  | Some rate, Some packet, _ -> Ok (Lognic.Traffic.make ~rate ~packet_size:packet)
  | None, None, Some t -> Ok t
  | Some rate, None, Some t -> Ok { t with Lognic.Traffic.rate }
  | None, Some packet, Some t -> Ok { t with Lognic.Traffic.packet_size = packet }
  | _ ->
    Error
      (`Msg
         "no traffic profile: add a 'traffic' line to the graph or pass --rate \
          and --packet")

let hardware_of doc = Option.value doc.Lognic_dsl.Parser.hardware ~default:default_hardware

(* Common arguments *)

let graph_arg =
  let doc = "Execution graph in the LogNIC DSL format." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"GRAPH" ~doc)

let quantity_conv =
  let parse s =
    match Lognic_dsl.Quantity.parse s with
    | Ok v -> Ok v
    | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, fun ppf v -> Fmt.pf ppf "%g" v)

let rate_arg =
  let doc = "Offered load (accepts unit suffixes, e.g. 25Gbps)." in
  Arg.(value & opt (some quantity_conv) None & info [ "rate" ] ~docv:"RATE" ~doc)

let packet_arg =
  let doc = "Packet size (e.g. 1500B, 4KiB)." in
  Arg.(value & opt (some quantity_conv) None & info [ "packet" ] ~docv:"SIZE" ~doc)

let queue_model_arg =
  let doc = "Queueing model: mm1n (paper Eq 12), mmcn, mm1, none." in
  let model_conv =
    Arg.enum
      [
        ("mm1n", Lognic.Latency.Mm1n_model);
        ("mmcn", Lognic.Latency.Mmcn_model);
        ("mm1", Lognic.Latency.Mm1_model);
        ("none", Lognic.Latency.No_queueing);
      ]
  in
  Arg.(value & opt model_conv Lognic.Latency.Mm1n_model & info [ "queue-model" ] ~doc)

let jobs_arg =
  let doc =
    "Worker domains for parallel sweeps and searches (default: the \
     machine's core count). Results are identical at any job count."
  in
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let apply_jobs jobs = Option.iter Lognic_numerics.Parallel.set_default_jobs jobs

(* Colon-spec flags all parse through the shared grammar engine, with
   the DSL's quantity parser plugged in for unit-suffixed fields. *)

module Spec = Lognic_sim.Spec

let parse_specs grammar specs =
  Result.map_error
    (fun e -> `Msg e)
    (Spec.parse_all ~quantity:Lognic_dsl.Quantity.parse grammar specs)


(* estimate *)

let tail_arg =
  let doc = "Also estimate latency percentiles (p50/p90/p99)." in
  Arg.(value & flag & info [ "tail" ] ~doc)

let estimate_cmd =
  let run graph_path rate packet queue_model tail =
    let ( let* ) = Result.bind in
    let* doc = load_document graph_path in
    let* traffic = resolve_traffic doc rate packet in
    let report =
      Lognic.Estimate.run ~queue_model doc.graph ~hw:(hardware_of doc) ~traffic
    in
    Fmt.pr "%a@." (Lognic.Estimate.pp_report doc.graph) report;
    if tail then begin
      let r =
        Lognic.Tail.evaluate ~model:queue_model doc.graph ~hw:(hardware_of doc)
          ~traffic
      in
      let q = Lognic.Tail.overall r in
      Fmt.pr "tail: p50 %.2f us, p90 %.2f us, p99 %.2f us@."
        (Lognic.Units.to_usec q.p50) (Lognic.Units.to_usec q.p90)
        (Lognic.Units.to_usec q.p99)
    end;
    Ok ()
  in
  let term =
    Term.(
      term_result
        (const run $ graph_arg $ rate_arg $ packet_arg $ queue_model_arg
       $ tail_arg))
  in
  Cmd.v
    (Cmd.info "estimate"
       ~doc:"Estimate throughput and latency of an execution graph (model mode).")
    term

(* sweep *)

let sweep_cmd =
  let points_arg =
    let doc = "Number of load points." in
    Arg.(value & opt int 12 & info [ "points" ] ~doc)
  in
  let max_rate_arg =
    let doc = "Highest offered load (default: the graph's capacity)." in
    Arg.(
      value & opt (some quantity_conv) None & info [ "max-rate" ] ~docv:"RATE" ~doc)
  in
  let run graph_path packet queue_model points max_rate =
    let ( let* ) = Result.bind in
    let* doc = load_document graph_path in
    let* traffic = resolve_traffic doc None packet in
    let hw = hardware_of doc in
    let max_rate =
      match max_rate with
      | Some r -> r
      | None -> Lognic.Throughput.capacity doc.graph ~hw
    in
    let* () =
      if Float.is_finite max_rate then Ok ()
      else Error (`Msg "graph has unbounded capacity: pass --max-rate")
    in
    Fmt.pr "offered(Gbps)  attained(Gbps)  latency(us)@.";
    List.iter
      (fun (offered, attained, latency) ->
        Fmt.pr "%10.3f  %12.3f  %10.2f@."
          (Lognic.Units.to_gbps offered)
          (Lognic.Units.to_gbps attained)
          (Lognic.Units.to_usec latency))
      (Lognic.Estimate.saturation_sweep ~points ~queue_model doc.graph ~hw
         ~packet_size:traffic.Lognic.Traffic.packet_size ~max_rate);
    Ok ()
  in
  let term =
    Term.(
      term_result
        (const run $ graph_arg $ packet_arg $ queue_model_arg $ points_arg
       $ max_rate_arg))
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Sweep the offered load to saturation and print the \
          latency-throughput curve.")
    term

(* simulate *)

let duration_arg =
  let doc = "Simulated seconds." in
  Arg.(value & opt float 0.1 & info [ "duration" ] ~doc)

let seed_arg =
  let doc = "Random seed." in
  Arg.(value & opt int 1 & info [ "seed" ] ~doc)

let simulate_cmd =
  let run graph_path rate packet duration seed =
    let ( let* ) = Result.bind in
    let* doc = load_document graph_path in
    let config =
      Lognic_sim.Netsim.Config.(
        default |> with_horizon duration |> with_seed seed)
    in
    (* a graph carrying `class` lines simulates the whole mix unless the
       command line pins a single class *)
    let* mix =
      match (doc.mix, rate, packet) with
      | Some mix, None, None -> Ok mix
      | _ ->
        let* traffic = resolve_traffic doc rate packet in
        Ok [ (traffic, 1.) ]
    in
    let m = Lognic_sim.Netsim.run ~config doc.graph ~hw:(hardware_of doc) ~mix in
    let s = m.summary in
    Fmt.pr "throughput: %.3f Gbps (%d packets delivered, %d dropped)@."
      (Lognic.Units.to_gbps s.Lognic_sim.Telemetry.throughput)
      s.delivered_packets s.dropped_packets;
    Fmt.pr "latency: mean %.2f us, p50 %.2f us, p99 %.2f us@."
      (Lognic.Units.to_usec s.mean_latency)
      (Lognic.Units.to_usec s.p50_latency)
      (Lognic.Units.to_usec s.p99_latency);
    List.iter
      (fun (v : Lognic_sim.Netsim.vertex_stats) ->
        Fmt.pr "vertex %d (%s): utilization %.2f, drops %d@." v.vid v.vlabel
          v.utilization v.drops)
      m.vertex_stats;
    Ok ()
  in
  let term =
    Term.(
      term_result
        (const run $ graph_arg $ rate_arg $ packet_arg $ duration_arg $ seed_arg))
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Run the packet-level simulator on an execution graph.")
    term

(* check *)

let check_cmd =
  let graphs_arg =
    let doc =
      "DSL graph files to replay under the runtime invariant checkers. \
       When omitted, only the property-based fuzz suite runs."
    in
    Arg.(value & pos_all file [] & info [] ~docv:"GRAPH" ~doc)
  in
  let scale_arg =
    let doc = "Multiply every fuzz property's iteration count by $(docv)." in
    Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"FACTOR" ~doc)
  in
  let check_seed_arg =
    let doc = "Random seed for the fuzz suite and graph replays." in
    Arg.(value & opt int 42 & info [ "seed" ] ~doc)
  in
  let check_duration_arg =
    let doc = "Simulated seconds per graph replay." in
    Arg.(value & opt float 0.01 & info [ "duration" ] ~doc)
  in
  let json_arg =
    let doc = "Write the full check report as versioned JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"PATH" ~doc)
  in
  let check_graph ~seed ~duration path =
    let ( let* ) = Result.bind in
    let* doc = load_document path in
    let* mix =
      match doc.mix with
      | Some mix -> Ok mix
      | None ->
        let* traffic = resolve_traffic doc None None in
        Ok [ (traffic, 1.) ]
    in
    let config =
      Lognic_sim.Netsim.Config.(
        default |> with_horizon duration |> with_seed seed
        |> with_invariants true)
    in
    let m = Lognic_sim.Netsim.run ~config doc.graph ~hw:(hardware_of doc) ~mix in
    match m.invariants with
    | None ->
      Error (`Msg "internal error: check_invariants was set but no report came back")
    | Some report -> Ok (path, report)
  in
  let run graphs scale seed duration json_path =
    let ( let* ) = Result.bind in
    let module Inv = Lognic_sim.Invariants in
    let* graph_reports =
      List.fold_left
        (fun acc path ->
          let* acc = acc in
          let* r = check_graph ~seed ~duration path in
          Ok (r :: acc))
        (Ok []) graphs
    in
    let graph_reports = List.rev graph_reports in
    List.iter
      (fun (path, (r : Inv.report)) ->
        Fmt.pr "graph %s: %d checks, %d violations@." path r.checks
          r.total_violations;
        List.iter (fun v -> Fmt.pr "  %a@." Inv.pp_violation v) r.violations)
      graph_reports;
    let outcomes =
      Lognic_check.Runner.run ~seed (Lognic_check.Props.suite ~scale ())
    in
    List.iter
      (fun o -> Fmt.pr "@[<v>%a@]@." Lognic_check.Runner.pp_outcome o)
      outcomes;
    let graphs_ok =
      List.for_all (fun (_, r) -> Inv.ok r) graph_reports
    in
    let props_ok = Lognic_check.Runner.all_passed outcomes in
    let passed = graphs_ok && props_ok in
    (match json_path with
    | None -> ()
    | Some path ->
      let module J = Lognic_sim.Telemetry.Json in
      let json =
        J.versioned ~kind:"check"
          [
            ("seed", J.Num (float_of_int seed));
            ("scale", J.Num scale);
            ( "graphs",
              J.Arr
                (List.map
                   (fun (p, r) ->
                     J.Obj
                       [
                         ("path", J.Str p);
                         ("invariants", Inv.report_to_json r);
                       ])
                   graph_reports) );
            ( "properties",
              J.Arr (List.map Lognic_check.Runner.outcome_to_json outcomes) );
            ("passed", J.Bool passed);
          ]
      in
      Out_channel.with_open_text path (fun oc ->
          output_string oc (Lognic_sim.Telemetry.Json.to_string json);
          output_char oc '\n'));
    if passed then begin
      Fmt.pr "check: all %d properties and %d graph replays passed@."
        (List.length outcomes)
        (List.length graph_reports);
      Ok ()
    end
    else Error (`Msg "check: invariant violations or property failures (see above)")
  in
  let term =
    Term.(
      term_result
        (const run $ graphs_arg $ scale_arg $ check_seed_arg
       $ check_duration_arg $ json_arg))
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Run the property-based fuzz suite and replay graphs under the \
          runtime invariant checkers.")
    term

(* report *)

let write_json path json =
  Out_channel.with_open_text path (fun oc ->
      output_string oc (Lognic_sim.Telemetry.Json.to_string json);
      output_char oc '\n')

let report_cmd =
  let trace_arg =
    let doc = "Write the full measurement (summary, per-entity stats, drop \
               sites, sampled series) as JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"PATH" ~doc)
  in
  let trace_events_arg =
    let doc = "Record per-packet lifecycle spans for a reservoir-sampled \
               subset of packets and write them as Chrome trace-event JSON \
               to $(docv) (loadable in Perfetto or chrome://tracing). \
               Tracing never changes the measured results." in
    Arg.(value & opt (some string) None & info [ "trace-events" ] ~docv:"PATH" ~doc)
  in
  let reservoir_arg =
    let doc = "Packets held by the trace reservoir (with --trace-events)." in
    Arg.(value & opt int 64 & info [ "reservoir" ] ~docv:"N" ~doc)
  in
  let csv_arg =
    let doc = "Write the sampled time series as CSV files $(docv).SERIES.csv." in
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"PREFIX" ~doc)
  in
  let interval_arg =
    let doc = "Sampling interval in simulated seconds (default: duration/200)." in
    Arg.(value & opt (some float) None & info [ "sample-interval" ] ~docv:"SECONDS" ~doc)
  in
  let run graph_path rate packet duration seed interval trace trace_events
      reservoir csv =
    let ( let* ) = Result.bind in
    let* doc = load_document graph_path in
    let dt =
      match interval with Some dt -> dt | None -> duration /. 200.
    in
    let* () =
      if reservoir < 1 then Error (`Msg "--reservoir must be >= 1") else Ok ()
    in
    let config =
      let open Lognic_sim.Netsim.Config in
      let base =
        default |> with_horizon duration |> with_seed seed |> with_sampling dt
      in
      match trace_events with
      | Some _ -> with_trace { Lognic_sim.Trace.reservoir } base
      | None -> base
    in
    let* mix =
      match (doc.mix, rate, packet) with
      | Some mix, None, None -> Ok mix
      | _ ->
        let* traffic = resolve_traffic doc rate packet in
        Ok [ (traffic, 1.) ]
    in
    let m = Lognic_sim.Netsim.run ~config doc.graph ~hw:(hardware_of doc) ~mix in
    let s = m.summary in
    let module Tel = Lognic_sim.Telemetry in
    Fmt.pr "throughput: %.3f Gbps (%d delivered, %d dropped, loss %.2f%%)@."
      (Lognic.Units.to_gbps s.Tel.throughput)
      s.delivered_packets s.dropped_packets (100. *. s.loss_rate);
    let terms = s.latency_terms in
    Fmt.pr
      "latency: mean %.2f us = queueing %.2f + service %.2f + wire %.2f + \
       overhead %.2f@."
      (Lognic.Units.to_usec s.mean_latency)
      (Lognic.Units.to_usec terms.Tel.queueing)
      (Lognic.Units.to_usec terms.Tel.service)
      (Lognic.Units.to_usec terms.Tel.wire)
      (Lognic.Units.to_usec terms.Tel.overhead);
    List.iter
      (fun (v : Lognic_sim.Netsim.vertex_stats) ->
        Fmt.pr "node %-16s utilization %5.2f, completions %8d, drops %d@."
          v.vlabel v.utilization v.completions v.drops)
      m.vertex_stats;
    List.iter
      (fun (md : Lognic_sim.Netsim.medium_stats) ->
        Fmt.pr "medium %-14s utilization %5.2f, rejections %d@." md.mlabel
          md.m_utilization md.m_rejections)
      m.medium_stats;
    if m.drop_breakdown <> [] then begin
      Fmt.pr "drops by site:@.";
      List.iter
        (fun (site, n) -> Fmt.pr "  %-24s %d@." (Tel.drop_site_name site) n)
        m.drop_breakdown
    end;
    Option.iter
      (fun path ->
        write_json path (Lognic_sim.Netsim.measurement_to_json m);
        Fmt.pr "trace written to %s@." path)
      trace;
    Option.iter
      (fun path ->
        match m.trace with
        | Some t ->
          write_json path (Lognic_sim.Trace.to_chrome_json t);
          Fmt.pr "trace events (%d of %d packets) written to %s@."
            (List.length (Lognic_sim.Trace.records t))
            (Lognic_sim.Trace.seen t) path
        | None -> ())
      trace_events;
    Option.iter
      (fun prefix ->
        List.iter
          (fun series ->
            let path =
              Printf.sprintf "%s.%s.csv" prefix (Tel.Series.label series)
            in
            Out_channel.with_open_text path (fun oc ->
                output_string oc (Tel.Series.to_csv series)))
          m.series;
        Fmt.pr "%d series written to %s.*.csv@." (List.length m.series) prefix)
      csv;
    Ok ()
  in
  let term =
    Term.(
      term_result
        (const run $ graph_arg $ rate_arg $ packet_arg $ duration_arg
       $ seed_arg $ interval_arg $ trace_arg $ trace_events_arg
       $ reservoir_arg $ csv_arg))
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Simulate with full observability: per-entity utilization and drop \
          attribution, latency decomposition, sampled queue-depth traces, \
          per-packet lifecycle tracing (Perfetto-loadable), and structured \
          JSON/CSV export.")
    term

(* watch *)

let watch_cmd =
  let module M = Lognic_sim.Metrics in
  let interval_arg =
    let doc =
      "Snapshot interval in simulated seconds (default: duration/100)."
    in
    Arg.(
      value & opt (some float) None & info [ "interval" ] ~docv:"SECONDS" ~doc)
  in
  let stream_arg =
    let doc =
      "Write every snapshot as one NDJSON line (schema \"metrics\") to \
       $(docv), flushed as the run progresses."
    in
    Arg.(value & opt (some string) None & info [ "stream" ] ~docv:"FILE" ~doc)
  in
  let openmetrics_arg =
    let doc =
      "Write the final cumulative state as OpenMetrics text to $(docv)."
    in
    Arg.(
      value & opt (some string) None & info [ "openmetrics" ] ~docv:"FILE" ~doc)
  in
  let slo_arg =
    let doc =
      "SLO watchdog rule, repeatable. Grammar: [ENTITY.]METRIC>VALUE[xN], \
       [ENTITY.]METRIC<VALUE[xN], or [ENTITY.]METRIC^N (value rising for N \
       consecutive intervals); ENTITY defaults to '*' (any), xN requires N \
       consecutive breaching intervals before firing and the same N clean \
       intervals to resolve. Examples: '*.utilization>0.95x2', \
       'md5.queue_depth^3', 'run.latency_p99>1e-3'."
    in
    Arg.(value & opt_all string [] & info [ "slo" ] ~docv:"RULE" ~doc)
  in
  let alerts_json_arg =
    let doc = "Write the final alert states as JSON (schema \"alerts\") to \
               $(docv)." in
    Arg.(
      value & opt (some string) None & info [ "alerts-json" ] ~docv:"FILE" ~doc)
  in
  let profile_arg =
    let doc =
      "Also run the wall-clock self-profiler (engine phases + GC per \
       interval) and print per-phase totals; write the full report with \
       --profile-json."
    in
    Arg.(value & flag & info [ "profile" ] ~doc)
  in
  let profile_json_arg =
    let doc = "Write the self-profiler report as JSON (schema \"profile\") \
               to $(docv); implies --profile." in
    Arg.(
      value & opt (some string) None & info [ "profile-json" ] ~docv:"FILE" ~doc)
  in
  let run graph_path rate packet duration seed interval stream openmetrics
      slo_rules alerts_json profile profile_json =
    let ( let* ) = Result.bind in
    let* doc = load_document graph_path in
    let dt = match interval with Some dt -> dt | None -> duration /. 100. in
    let* () =
      if dt <= 0. then Error (`Msg "--interval must be > 0") else Ok ()
    in
    let* slo =
      List.fold_left
        (fun acc rule ->
          let* rules = acc in
          match M.Slo.parse rule with
          | Ok r -> Ok (r :: rules)
          | Error e -> Error (`Msg (Spec.error ~flag:"slo" ~src:rule e)))
        (Ok []) slo_rules
      |> Result.map List.rev
    in
    let* mix =
      match (doc.mix, rate, packet) with
      | Some mix, None, None -> Ok mix
      | _ ->
        let* traffic = resolve_traffic doc rate packet in
        Ok [ (traffic, 1.) ]
    in
    let stream_oc = Option.map Out_channel.open_text stream in
    let tty = Unix.isatty Unix.stdout in
    let active = Hashtbl.create 8 in
    let last_draw = ref 0. in
    let render (snap : M.snapshot) =
      Fmt.pr "\027[2J\027[H";
      Fmt.pr "lognic watch   t=%.6fs   snapshot %d@.@." snap.M.s_time
        snap.M.s_seq;
      List.iter
        (fun (e : M.entity_snapshot) ->
          let cells =
            List.map
              (fun (name, s) ->
                match s with
                | M.Counter_s { delta; total } ->
                  Printf.sprintf "%s +%g (%g)" name delta total
                | M.Gauge_s { value } -> Printf.sprintf "%s %g" name value
                | M.Rate_s { value; _ } -> Printf.sprintf "%s %.3f" name value
                | M.Hist_s { count; p99; _ } ->
                  Printf.sprintf "%s n=%d p99=%.3gs" name count p99)
              e.M.e_samples
          in
          Fmt.pr "  %-22s %s@." e.M.e_name (String.concat "  " cells))
        snap.M.s_entities;
      if Hashtbl.length active > 0 then begin
        Fmt.pr "@.active alerts:@.";
        Hashtbl.iter
          (fun (rule, entity) value ->
            Fmt.pr "  ! %s  (entity %s, value %g)@." rule entity value)
          active
      end
    in
    let on_snapshot (snap : M.snapshot) =
      List.iter
        (fun (ev : M.alert_event) ->
          if ev.M.ev_firing then
            Hashtbl.replace active (ev.M.ev_rule, ev.M.ev_entity) ev.M.ev_value
          else Hashtbl.remove active (ev.M.ev_rule, ev.M.ev_entity))
        snap.M.s_alerts;
      (match stream_oc with
      | Some oc ->
        output_string oc (M.snapshot_to_string snap);
        output_char oc '\n';
        flush oc
      | None -> ());
      if tty then begin
        (* throttle redraws to the human eye, not the simulator *)
        let now = Unix.gettimeofday () in
        if now -. !last_draw > 0.05 then begin
          last_draw := now;
          render snap
        end
      end
      else
        List.iter
          (fun (ev : M.alert_event) ->
            Fmt.pr "[%.6f] %s %s (entity %s, value %g)@." snap.M.s_time
              (if ev.M.ev_firing then "ALERT firing:" else "alert resolved:")
              ev.M.ev_rule ev.M.ev_entity ev.M.ev_value)
          snap.M.s_alerts
    in
    let profile = profile || profile_json <> None in
    let config =
      Lognic_sim.Netsim.Config.(
        default |> with_horizon duration |> with_seed seed
        |> with_metrics
             { M.interval = dt; slo; profile; on_snapshot = Some on_snapshot })
    in
    let m = Lognic_sim.Netsim.run ~config doc.graph ~hw:(hardware_of doc) ~mix in
    Option.iter Out_channel.close stream_oc;
    let* mm =
      match m.metrics with
      | Some mm -> Ok mm
      | None -> Error (`Msg "internal error: metrics instance missing")
    in
    if tty then Fmt.pr "@.";
    let s = m.summary in
    Fmt.pr "throughput: %.3f Gbps (%d delivered, %d dropped, loss %.2f%%)@."
      (Lognic.Units.to_gbps s.Lognic_sim.Telemetry.throughput)
      s.delivered_packets s.dropped_packets (100. *. s.loss_rate);
    Fmt.pr "%d snapshots every %gs@." (M.snapshots mm) dt;
    let fired =
      List.filter (fun (a : M.alert) -> a.M.a_first_fired >= 0.) (M.alerts mm)
    in
    if slo <> [] then
      if fired = [] then Fmt.pr "SLO: all %d rules clean@." (List.length slo)
      else
        List.iter
          (fun (a : M.alert) ->
            Fmt.pr
              "SLO %s: entity %s %s — first fired %.6fs, last %.6fs, %d \
               breaching intervals, worst %g@."
              (M.Slo.to_string a.M.a_rule)
              a.M.a_entity
              (if a.M.a_active then "STILL FIRING" else "resolved")
              a.M.a_first_fired a.M.a_last_fired a.M.a_breaches a.M.a_worst)
          fired;
    Option.iter
      (fun path ->
        Out_channel.with_open_text path (fun oc ->
            output_string oc (M.to_openmetrics mm));
        Fmt.pr "openmetrics written to %s@." path)
      openmetrics;
    Option.iter
      (fun path ->
        write_json path (M.alerts_to_json mm);
        Fmt.pr "alerts written to %s@." path)
      alerts_json;
    (match stream with
    | Some path -> Fmt.pr "metrics stream written to %s@." path
    | None -> ());
    (match M.profiler mm with
    | Some p ->
      Fmt.pr "%a@." Lognic_sim.Profile.pp p;
      Option.iter
        (fun path ->
          match M.profile_to_json mm with
          | Some j ->
            write_json path j;
            Fmt.pr "profile written to %s@." path
          | None -> ())
        profile_json
    | None -> ());
    Ok ()
  in
  let term =
    Term.(
      term_result
        (const run $ graph_arg $ rate_arg $ packet_arg $ duration_arg
       $ seed_arg $ interval_arg $ stream_arg $ openmetrics_arg $ slo_arg
       $ alerts_json_arg $ profile_arg $ profile_json_arg))
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:
         "Simulate with live streaming metrics: per-entity counters, gauges \
          and latency histograms sampled every --interval sim-seconds, \
          delta-encoded NDJSON/OpenMetrics export, SLO watchdog rules with \
          hysteresis, an optional engine self-profiler, and a live \
          refreshing table on a TTY.")
    term

(* explain *)

let explain_cmd =
  let json_arg =
    let doc = "Also write the full explain report as JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"PATH" ~doc)
  in
  let run graph_path rate packet queue_model duration seed json =
    let ( let* ) = Result.bind in
    let* doc = load_document graph_path in
    let config =
      Lognic_sim.Netsim.Config.(
        default |> with_horizon duration |> with_seed seed)
    in
    (* a graph carrying `class` lines explains the whole mix (per-class
       residual rows) unless the command line pins a single class *)
    (match (doc.mix, rate, packet) with
    | Some mix, None, None ->
      let report =
        Lognic_sim.Explain.run_mix ~config ~queue_model doc.graph
          ~hw:(hardware_of doc) ~mix
      in
      Fmt.pr "%a@." Lognic_sim.Explain.pp_mix report;
      Option.iter
        (fun path ->
          write_json path (Lognic_sim.Explain.mix_to_json report);
          Fmt.pr "explain report written to %s@." path)
        json;
      Ok ()
    | _ ->
      let* traffic = resolve_traffic doc rate packet in
      let report =
        Lognic_sim.Explain.run ~config ~queue_model doc.graph
          ~hw:(hardware_of doc) ~traffic
      in
      Fmt.pr "%a@." Lognic_sim.Explain.pp report;
      Option.iter
        (fun path ->
          write_json path (Lognic_sim.Explain.to_json report);
          Fmt.pr "explain report written to %s@." path)
        json;
      Ok ())
  in
  let term =
    Term.(
      term_result
        (const run $ graph_arg $ rate_arg $ packet_arg $ queue_model_arg
       $ duration_arg $ seed_arg $ json_arg))
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Run the analytic model and the simulator on the same graph and \
          traffic, join them per entity, and rank the bottlenecks with \
          residual attribution (model vs measured utilization and queue \
          depths).")
    term

(* tenants *)

let tenants_cmd =
  let tenant_grammar =
    Spec.(grammar ~flag:"tenant"
            [
              field "NAME" Str; field "WEIGHT" Int;
              field ~optional:true "SHARE" Float;
              field ~optional:true "SLO" Float;
            ])
  in
  let tenant_arg =
    let doc =
      "Declare tenant (VF) $(i,NAME) with stage-1 WRR scheduler weight \
       $(i,WEIGHT), an optional relative offered-traffic share $(i,SHARE) \
       (normalized across the set; default 1) and an optional p99 latency \
       SLO $(i,SLO) in seconds (repeatable)."
    in
    Arg.(
      value
      & opt_all string []
      & info [ "tenant" ] ~docv:"NAME:WEIGHT[:SHARE[:SLO]]" ~doc)
  in
  let population_arg =
    let doc =
      "Shorthand for $(i,N) equal-weight, equal-share tenants named \
       vf0000.. — the scale-test population. Exclusive with --tenant."
    in
    Arg.(value & opt (some int) None & info [ "tenants" ] ~docv:"N" ~doc)
  in
  let json_arg =
    let doc = "Also write the full tenant report as JSON (schema \
               \"tenants\") to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"PATH" ~doc)
  in
  let run graph_path rate packet queue_model duration seed tenant_specs
      population json =
    let ( let* ) = Result.bind in
    let module T = Lognic_sim.Tenant in
    let* doc = load_document graph_path in
    let* traffic = resolve_traffic doc rate packet in
    let* tenants =
      match (tenant_specs, population) with
      | [], None ->
        Error
          (`Msg "no tenants: pass --tenant (repeatable) or --tenants N")
      | _ :: _, Some _ ->
        Error (`Msg "--tenant and --tenants are exclusive")
      | [], Some n -> (
        match T.uniform n with
        | s -> Ok s
        | exception Invalid_argument m -> Error (`Msg m))
      | specs, None -> (
        let* parsed = parse_specs tenant_grammar specs in
        match
          T.set
            (List.map
               (fun v ->
                 T.spec
                   ~weight:(Spec.get_int v 1)
                   ?share:(Spec.find_float v 2)
                   ?slo_p99:(Spec.find_float v 3)
                   (Spec.get_str v 0))
               parsed)
        with
        | s -> Ok s
        | exception Invalid_argument m -> Error (`Msg m))
    in
    let config =
      Lognic_sim.Netsim.Config.(
        default |> with_horizon duration |> with_seed seed)
    in
    let report =
      Lognic_sim.Explain.run_tenants ~config ~queue_model doc.graph
        ~hw:(hardware_of doc) ~traffic ~tenants
    in
    Fmt.pr "%a@." Lognic_sim.Explain.pp_tenants report;
    Option.iter
      (fun path ->
        write_json path (Lognic_sim.Explain.tenants_to_json report);
        Fmt.pr "tenants report written to %s@." path)
      json;
    Ok ()
  in
  let term =
    Term.(
      term_result
        (const run $ graph_arg $ rate_arg $ packet_arg $ queue_model_arg
       $ duration_arg $ seed_arg $ tenant_arg $ population_arg $ json_arg))
  in
  Cmd.v
    (Cmd.info "tenants"
       ~doc:
         "Share the NIC between SR-IOV tenants: run one simulation under \
          the two-stage weighted-round-robin arbiter with per-VF \
          attribution, join it against the weighted multi-class M/M/c/N \
          decomposition at the model's bottleneck, and report per-tenant \
          throughput/latency residuals, SLO verdicts and \
          fairness/isolation indices.")
    term

(* flowcache *)

let flowcache_cmd =
  let flows_arg =
    let doc =
      "Flow population size (accepts SI suffixes, e.g. 1M). The Zipf \
       popularity distribution is drawn over this many flows."
    in
    Arg.(value & opt quantity_conv 1e6 & info [ "flows" ] ~docv:"N" ~doc)
  in
  let zipf_arg =
    let doc = "Zipf skew s >= 0 of the flow popularity (0 = uniform)." in
    Arg.(value & opt float 1.0 & info [ "zipf" ] ~docv:"S" ~doc)
  in
  let emc_arg =
    let doc = "Exact-match cache capacity in entries (e.g. 8K)." in
    Arg.(value & opt quantity_conv 8192. & info [ "emc" ] ~docv:"ENTRIES" ~doc)
  in
  let megaflow_arg =
    let doc = "Megaflow-table capacity in entries (e.g. 64K)." in
    Arg.(
      value & opt quantity_conv 65536. & info [ "megaflow" ] ~docv:"ENTRIES" ~doc)
  in
  let ttl_arg =
    let doc =
      "Optional idle timeout in seconds (the OVS flow idle-timeout \
       analogue); entries idle longer count as misses and the model's hit \
       ratios become genuinely rate-dependent."
    in
    Arg.(value & opt (some float) None & info [ "ttl" ] ~docv:"SECONDS" ~doc)
  in
  let load_arg =
    let doc = "Offered load as a fraction of the 25 GbE line rate." in
    Arg.(value & opt float 0.5 & info [ "load" ] ~docv:"FRACTION" ~doc)
  in
  let json_arg =
    let doc =
      "Also write the full flow-cache report as JSON (schema \"flowcache\") \
       to $(docv)."
    in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"PATH" ~doc)
  in
  let run flows zipf emc megaflow ttl load packet queue_model duration seed
      json =
    let module App = Lognic_apps.Flow_cache in
    let module FC = Lognic.Flowcache in
    match
      let cfg =
        match packet with
        | None -> App.default
        | Some packet_size -> { App.default with App.packet_size }
      in
      let spec =
        FC.spec ?ttl ~zipf ~emc_entries:(int_of_float emc)
          ~megaflow_entries:(int_of_float megaflow) ~flows:(int_of_float flows)
          ()
      in
      let config =
        Lognic_sim.Netsim.Config.(
          default |> with_horizon duration |> with_seed seed)
      in
      Lognic_sim.Explain.run_flowcache ~config ~queue_model spec
        (App.graph cfg) ~hw:App.hardware ~traffic:(App.traffic ~load cfg)
    with
    | report ->
      Fmt.pr "%a@." Lognic_sim.Explain.pp_flowcache report;
      Option.iter
        (fun path ->
          write_json path (Lognic_sim.Explain.flowcache_to_json report);
          Fmt.pr "flowcache report written to %s@." path)
        json;
      Ok ()
    | exception Invalid_argument m -> Error (`Msg m)
  in
  let term =
    Term.(
      term_result
        (const run $ flows_arg $ zipf_arg $ emc_arg $ megaflow_arg $ ttl_arg
       $ load_arg $ packet_arg $ queue_model_arg $ duration_arg $ seed_arg
       $ json_arg))
  in
  Cmd.v
    (Cmd.info "flowcache"
       ~doc:
         "Evaluate the flow-cache offload scenario with state-dependent \
          (feedback) splits: solve the EMC/megaflow hit ratios to a damped \
          fixed point under Che's LRU approximation, simulate the converged \
          datapath with per-packet cache lookups over a Zipf flow \
          population, and join the two — hit ratios, per-class (hot/warm/\
          cold) tail latency, and aggregate residuals.")
    term

(* contention *)

let contention_cmd =
  let resource_arg =
    let doc =
      "Add shared resource $(i,NAME) with byte/s capacity $(i,CAPACITY) to \
       the hardware (repeatable; accepts unit suffixes)."
    in
    Arg.(
      value
      & opt_all string []
      & info [ "resource" ] ~docv:"NAME:CAPACITY" ~doc)
  in
  let demand_arg =
    let doc =
      "Class $(i,CLASS) (0-based mix index) consumes $(i,VALUE) bytes of \
       resource $(i,RESOURCE) per offered byte (repeatable)."
    in
    Arg.(
      value
      & opt_all string []
      & info [ "class-demand" ] ~docv:"CLASS:RESOURCE:VALUE" ~doc)
  in
  let interference_arg =
    let doc =
      "Class $(i,VICTIM) is slowed by $(i,M) times class $(i,AGGRESSOR)'s \
       resource pressure (repeatable)."
    in
    Arg.(
      value
      & opt_all string []
      & info [ "interference" ] ~docv:"VICTIM:AGGRESSOR:M" ~doc)
  in
  let json_arg =
    let doc = "Also write the full contention report as JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"PATH" ~doc)
  in
  let resource_grammar =
    Spec.(grammar ~flag:"resource"
            [ field "NAME" Str; field "CAPACITY" Quantity ])
  in
  let demand_grammar =
    Spec.(grammar ~flag:"class-demand"
            [ field "CLASS" Int; field "RESOURCE" Str; field "VALUE" Quantity ])
  in
  let interference_grammar =
    Spec.(grammar ~flag:"interference"
            [ field "VICTIM" Int; field "AGGRESSOR" Int; field "M" Quantity ])
  in
  let run graph_path rate packet queue_model duration seed resources demands
      interferences json =
    let ( let* ) = Result.bind in
    let* doc = load_document graph_path in
    let* mix =
      match (doc.mix, rate, packet) with
      | Some mix, None, None -> Ok mix
      | _ ->
        let* traffic = resolve_traffic doc rate packet in
        Ok [ (traffic, 1.) ]
    in
    let n = List.length mix in
    let* resources =
      parse_specs resource_grammar resources
      |> Result.map
           (List.map (fun v -> (Spec.get_str v 0, Spec.get_float v 1)))
    in
    let* demands =
      parse_specs demand_grammar demands
      |> Result.map
           (List.map (fun v ->
                (Spec.get_int v 0, Spec.get_str v 1, Spec.get_float v 2)))
    in
    let* interferences =
      parse_specs interference_grammar interferences
      |> Result.map
           (List.map (fun v ->
                (Spec.get_int v 0, Spec.get_int v 1, Spec.get_float v 2)))
    in
    let* () =
      let bad =
        List.filter_map
          (fun (c, _, _) -> if c < 0 || c >= n then Some c else None)
          demands
        @ List.concat_map
            (fun (v, a, _) ->
              List.filter (fun i -> i < 0 || i >= n) [ v; a ])
            interferences
      in
      match bad with
      | [] -> Ok ()
      | c :: _ ->
        Error
          (`Msg
             (Printf.sprintf "class index %d out of range (mix has %d classes)"
                c n))
    in
    let hw =
      let base = hardware_of doc in
      if resources = [] then base
      else
        Lognic.Params.with_resources base
          (base.Lognic.Params.resources @ resources)
    in
    let contention =
      if demands = [] && interferences = [] then None
      else
        let demand_vectors =
          List.init n (fun i ->
              List.filter_map
                (fun (c, r, v) -> if c = i then Some (r, v) else None)
                demands)
        in
        let interference =
          let m = Array.make_matrix n n 0. in
          List.iter (fun (v, a, x) -> if v <> a then m.(v).(a) <- x)
            interferences;
          m
        in
        Some
          (Lognic.Extensions.contention ~demands:demand_vectors ~interference)
    in
    let config =
      Lognic_sim.Netsim.Config.(
        default |> with_horizon duration |> with_seed seed)
    in
    let* report =
      match
        Lognic_sim.Contention.run ~config ~queue_model ?contention doc.graph
          ~hw ~mix
      with
      | report -> Ok report
      | exception Invalid_argument m -> Error (`Msg m)
    in
    Fmt.pr "%a@." Lognic_sim.Contention.pp report;
    Option.iter
      (fun path ->
        write_json path (Lognic_sim.Contention.to_json report);
        Fmt.pr "contention report written to %s@." path)
      json;
    Ok ()
  in
  let term =
    Term.(
      term_result
        (const run $ graph_arg $ rate_arg $ packet_arg $ queue_model_arg
       $ duration_arg $ seed_arg $ resource_arg $ demand_arg
       $ interference_arg $ json_arg))
  in
  Cmd.v
    (Cmd.info "contention"
       ~doc:
         "Run the joint multi-class model with the multi-resource contention \
          layer against one simulation: per-class model-vs-sim residuals, \
          contention slowdowns and resource ceilings, and a ranked \
          interference report.")
    term

(* faults *)

let faults_cmd =
  let module F = Lognic_sim.Faults in
  let engine_down_arg =
    let doc =
      "Take $(i,N) engines of vertex $(i,VERTEX) offline on \
       [$(i,START), $(i,STOP)) simulated seconds (repeatable)."
    in
    Arg.(
      value
      & opt_all string []
      & info [ "engine-down" ] ~docv:"VERTEX:N:START:STOP" ~doc)
  in
  let degrade_arg =
    let doc =
      "Run medium $(i,MEDIUM) (interface, memory, or link-SRC-DST) at \
       $(i,FACTOR) of its bandwidth on [$(i,START), $(i,STOP)) (repeatable)."
    in
    Arg.(
      value
      & opt_all string []
      & info [ "degrade" ] ~docv:"MEDIUM:FACTOR:START:STOP" ~doc)
  in
  let queue_shrink_arg =
    let doc =
      "Cap vertex $(i,VERTEX)'s queue at $(i,CAP) entries on \
       [$(i,START), $(i,STOP)) (repeatable)."
    in
    Arg.(
      value
      & opt_all string []
      & info [ "queue-shrink" ] ~docv:"VERTEX:CAP:START:STOP" ~doc)
  in
  let drop_burst_arg =
    let doc =
      "Shed each offered packet with probability $(i,P) on \
       [$(i,START), $(i,STOP)) (repeatable)."
    in
    Arg.(
      value & opt_all string [] & info [ "drop-burst" ] ~docv:"P:START:STOP" ~doc)
  in
  let runs_arg =
    let doc =
      "Replications with derived seeds; >= 2 adds across-run recovery-time \
       and worst-interval statistics."
    in
    Arg.(value & opt int 1 & info [ "runs" ] ~docv:"N" ~doc)
  in
  let json_arg =
    let doc = "Also write the full faults report as JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"PATH" ~doc)
  in
  (* The fault constructors validate their arguments (ordering, ranges)
     with Invalid_argument; surface those through the same quoted-source
     error shape as the field-level parse. *)
  let parse_faults grammar specs mk =
    let ( let* ) = Result.bind in
    let* parsed = parse_specs grammar specs in
    List.fold_left
      (fun acc (src, v) ->
        let* acc = acc in
        match mk v with
        | ev -> Ok (ev :: acc)
        | exception Invalid_argument m ->
          Error (`Msg (Spec.error ~flag:(Spec.flag grammar) ~src m)))
      (Ok [])
      (List.combine specs parsed)
    |> Result.map List.rev
  in
  let engine_down_grammar =
    Spec.(grammar ~flag:"engine-down"
            [
              field "VERTEX" Str; field "N" Int; field "START" Float;
              field "STOP" Float;
            ])
  in
  let degrade_grammar =
    Spec.(grammar ~flag:"degrade"
            [
              field "MEDIUM" Str; field "FACTOR" Float; field "START" Float;
              field "STOP" Float;
            ])
  in
  let queue_shrink_grammar =
    Spec.(grammar ~flag:"queue-shrink"
            [
              field "VERTEX" Str; field "CAP" Int; field "START" Float;
              field "STOP" Float;
            ])
  in
  let drop_burst_grammar =
    Spec.(grammar ~flag:"drop-burst"
            [ field "P" Float; field "START" Float; field "STOP" Float ])
  in
  let run graph_path rate packet queue_model duration seed engine_downs
      degrades queue_shrinks drop_bursts runs jobs json =
    let ( let* ) = Result.bind in
    apply_jobs jobs;
    let* doc = load_document graph_path in
    let* traffic = resolve_traffic doc rate packet in
    let* engine_downs =
      parse_faults engine_down_grammar engine_downs (fun v ->
          F.engine_down ~vertex:(Spec.get_str v 0) ~engines:(Spec.get_int v 1)
            ~start:(Spec.get_float v 2) ~stop:(Spec.get_float v 3))
    in
    let* degrades =
      parse_faults degrade_grammar degrades (fun v ->
          F.medium_degraded ~medium:(Spec.get_str v 0)
            ~factor:(Spec.get_float v 1) ~start:(Spec.get_float v 2)
            ~stop:(Spec.get_float v 3))
    in
    let* queue_shrinks =
      parse_faults queue_shrink_grammar queue_shrinks (fun v ->
          F.queue_shrunk ~vertex:(Spec.get_str v 0)
            ~capacity:(Spec.get_int v 1) ~start:(Spec.get_float v 2)
            ~stop:(Spec.get_float v 3))
    in
    let* drop_bursts =
      parse_faults drop_burst_grammar drop_bursts (fun v ->
          F.drop_burst ~probability:(Spec.get_float v 0)
            ~start:(Spec.get_float v 1) ~stop:(Spec.get_float v 2))
    in
    let plan = engine_downs @ degrades @ queue_shrinks @ drop_bursts in
    let* () =
      if runs < 1 then Error (`Msg "--runs must be >= 1") else Ok ()
    in
    let config =
      Lognic_sim.Netsim.Config.(
        default |> with_horizon duration |> with_seed seed)
    in
    let* report =
      match
        Lognic_sim.Resilience.run ~config ~queue_model ~runs ?jobs doc.graph
          ~hw:(hardware_of doc) ~traffic ~plan
      with
      | report -> Ok report
      | exception Invalid_argument m -> Error (`Msg m)
    in
    Fmt.pr "%a@." Lognic_sim.Resilience.pp report;
    Option.iter
      (fun path ->
        write_json path (Lognic_sim.Resilience.to_json report);
        Fmt.pr "faults report written to %s@." path)
      json;
    Ok ()
  in
  let term =
    Term.(
      term_result
        (const run $ graph_arg $ rate_arg $ packet_arg $ queue_model_arg
       $ duration_arg $ seed_arg $ engine_down_arg $ degrade_arg
       $ queue_shrink_arg $ drop_burst_arg $ runs_arg $ jobs_arg $ json_arg))
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Inject a deterministic fault plan (engine failures, bandwidth \
          degradation, queue shrinks, drop bursts) into the simulator, \
          evaluate the analytic degraded-mode model over the same plan, and \
          join the two per fault interval with availability and recovery \
          statistics.")
    term

(* validate *)

let validate_cmd =
  let dot_arg =
    let doc = "Emit Graphviz DOT instead of the plain dump." in
    Arg.(value & flag & info [ "dot" ] ~doc)
  in
  let run graph_path dot =
    let ( let* ) = Result.bind in
    let* doc = load_document graph_path in
    (match Lognic.Graph.validate doc.graph with
    | Ok () -> Fmt.epr "valid@."
    | Error errors -> List.iter (fun e -> Fmt.epr "error: %s@." e) errors);
    if dot then print_string (Lognic_dsl.Printer.to_dot doc.graph)
    else Fmt.pr "%a@." Lognic.Graph.pp doc.graph;
    Ok ()
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Check and pretty-print (or DOT-render) an execution graph.")
    Term.(term_result (const run $ graph_arg $ dot_arg))

(* optimize *)

let split_arg =
  let doc = "Vertex NAME whose out-edge traffic split the optimizer may rebalance." in
  Arg.(value & opt_all string [] & info [ "split" ] ~docv:"NAME" ~doc)

let queue_arg =
  let doc = "NAME:LO:HI — vertex whose queue capacity may vary in [LO, HI]." in
  Arg.(value & opt_all string [] & info [ "queue" ] ~docv:"SPEC" ~doc)

let objective_arg =
  let doc = "Optimization goal." in
  let objective_conv =
    Arg.enum
      [
        ("max-throughput", `Max_throughput); ("min-latency", `Min_latency);
      ]
  in
  Arg.(value & opt objective_conv `Max_throughput & info [ "objective" ] ~doc)

let search_log_arg =
  let doc = "Write search telemetry (per-candidate scores, best-so-far \
             convergence curve, per-knob evaluation histogram, memo \
             hit-rate) as JSON to $(docv)." in
  Arg.(value & opt (some string) None & info [ "search-log" ] ~docv:"PATH" ~doc)

let optimize_cmd =
  let run graph_path rate packet splits queues objective jobs search_log =
    apply_jobs jobs;
    let ( let* ) = Result.bind in
    let* doc = load_document graph_path in
    let* traffic = resolve_traffic doc rate packet in
    let resolve name =
      match Lognic_dsl.Parser.vertex_id doc name with
      | Some id -> Ok id
      | None -> Error (`Msg (Printf.sprintf "unknown vertex %S" name))
    in
    let* split_knobs =
      List.fold_left
        (fun acc name ->
          let* acc = acc in
          let* id = resolve name in
          Ok (Lognic.Optimizer.Out_split id :: acc))
        (Ok []) splits
    in
    let queue_grammar =
      Spec.(grammar ~flag:"queue"
              [ field "NAME" Str; field "LO" Int; field "HI" Int ])
    in
    let* queue_specs = parse_specs queue_grammar queues in
    let* queue_knobs =
      List.fold_left
        (fun acc v ->
          let* acc = acc in
          let* id = resolve (Spec.get_str v 0) in
          Ok
            (Lognic.Optimizer.Queue_capacity
               (id, Spec.get_int v 1, Spec.get_int v 2)
            :: acc))
        (Ok []) queue_specs
    in
    let knobs = split_knobs @ queue_knobs in
    let* () =
      if knobs = [] then Error (`Msg "no knobs: pass --split and/or --queue")
      else Ok ()
    in
    let objective =
      match objective with
      | `Max_throughput -> Lognic.Optimizer.Maximize_throughput
      | `Min_latency -> Lognic.Optimizer.Minimize_latency
    in
    let log = Option.map (fun _ -> Lognic_sim.Search_log.create ()) search_log in
    let observer = Option.map (fun l -> Lognic_sim.Search_log.observer l) log in
    let solution =
      Lognic.Optimizer.optimize ?observer doc.graph ~hw:(hardware_of doc)
        ~traffic ~knobs objective
    in
    List.iter
      (fun a -> Fmt.pr "%a@." Lognic.Optimizer.pp_assignment a)
      solution.assignment;
    Fmt.pr "%a@."
      (Lognic.Estimate.pp_report solution.graph)
      solution.report;
    Fmt.pr "search: %d model evaluations, %d memo hits@."
      solution.stats.Lognic.Optimizer.evaluations
      solution.stats.Lognic.Optimizer.memo_hits;
    (match (search_log, log) with
    | Some path, Some l ->
      write_json path (Lognic_sim.Search_log.to_json l);
      Fmt.pr "search log written to %s@." path
    | _ -> ());
    Ok ()
  in
  let term =
    Term.(
      term_result
        (const run $ graph_arg $ rate_arg $ packet_arg $ split_arg $ queue_arg
       $ objective_arg $ jobs_arg $ search_log_arg))
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:"Search configurable parameters for a performance goal (optimizer mode).")
    term

(* roofline *)

let roofline_cmd =
  let run graph_path rate packet =
    let ( let* ) = Result.bind in
    let* doc = load_document graph_path in
    let* traffic = resolve_traffic doc rate packet in
    let g = doc.graph in
    let size = traffic.Lognic.Traffic.packet_size in
    let intensity = 1. /. size in
    List.iter
      (fun (v : Lognic.Graph.vertex) ->
        match Lognic.Roofline.of_vertex g ~hw:(hardware_of doc) ~packet_size:size v.id with
        | None -> ()
        | Some r ->
          Fmt.pr
            "%-16s peak %8.3f Gbps | attainable %8.3f Gbps | bound by %s@."
            v.label
            (Lognic.Units.to_gbps (r.Lognic.Roofline.peak_ops *. size))
            (Lognic.Units.to_gbps
               (Lognic.Roofline.attainable_bytes r ~intensity))
            (Lognic.Roofline.binding_ceiling r ~intensity))
      (Lognic.Graph.vertices g);
    Ok ()
  in
  Cmd.v
    (Cmd.info "roofline"
       ~doc:
         "Print each IP vertex's extended roofline at the traffic's packet \
          size (peak vs medium ceilings, binding constraint).")
    Term.(term_result (const run $ graph_arg $ rate_arg $ packet_arg))

(* sensitivity *)

let sensitivity_cmd =
  let run graph_path rate packet queue_model jobs =
    apply_jobs jobs;
    let ( let* ) = Result.bind in
    let* doc = load_document graph_path in
    let* traffic = resolve_traffic doc rate packet in
    let g = doc.graph in
    let elasticities =
      Lognic.Sensitivity.analyze ~queue_model g ~hw:(hardware_of doc) ~traffic
    in
    Fmt.pr "parameter        d(throughput)/d(param)  d(latency)/d(param)@.";
    List.iter
      (fun (e : Lognic.Sensitivity.elasticity) ->
        Fmt.pr "%-16s %12.3f  %21.3f@."
          (Fmt.str "%a" (Lognic.Sensitivity.pp_parameter g) e.parameter)
          e.throughput_elasticity e.latency_elasticity)
      elasticities;
    Fmt.pr "most binding: %a@."
      (Lognic.Sensitivity.pp_parameter g)
      (Lognic.Sensitivity.most_binding elasticities);
    Ok ()
  in
  let term =
    Term.(
      term_result
        (const run $ graph_arg $ rate_arg $ packet_arg $ queue_model_arg
       $ jobs_arg))
  in
  Cmd.v
    (Cmd.info "sensitivity"
       ~doc:
         "Compute per-parameter elasticities: which knob limits throughput or \
          drives latency.")
    term

(* params *)

let params_cmd =
  let run () =
    Lognic_apps.Figures.table2 Fmt.stdout;
    Ok ()
  in
  Cmd.v
    (Cmd.info "params" ~doc:"Print the LogNIC parameter glossary (paper Table 2).")
    Term.(term_result (const run $ const ()))

(* figures *)

let figures_cmd =
  let figure_arg =
    let doc = "Figure ids to render (default: all)." in
    Arg.(value & pos_all string [] & info [] ~docv:"FIG" ~doc)
  in
  let quick_arg =
    let doc = "Shorter simulations (less precise measured series)." in
    Arg.(value & flag & info [ "quick" ] ~doc)
  in
  let run figures quick jobs =
    apply_jobs jobs;
    let speed = if quick then Lognic_apps.Figures.Quick else Lognic_apps.Figures.Full in
    match figures with
    | [] ->
      Lognic_apps.Figures.all ~speed Fmt.stdout;
      Ok ()
    | figures ->
      List.fold_left
        (fun acc name ->
          match acc with
          | Error _ as e -> e
          | Ok () -> (
            match Lognic_apps.Figures.render ~speed name Fmt.stdout with
            | Ok () -> Ok ()
            | Error e -> Error (`Msg e)))
        (Ok ()) figures
  in
  Cmd.v
    (Cmd.info "figures"
       ~doc:"Regenerate the paper's evaluation figures (model + simulator).")
    Term.(term_result (const run $ figure_arg $ quick_arg $ jobs_arg))

let () =
  let info =
    Cmd.info "lognic" ~version:"1.0.0"
      ~doc:"LogNIC: a high-level performance model for SmartNICs"
  in
  let group =
    Cmd.group info
      [
        estimate_cmd; sweep_cmd; simulate_cmd; check_cmd; report_cmd; watch_cmd;
        explain_cmd; tenants_cmd; flowcache_cmd; contention_cmd; faults_cmd;
        validate_cmd;
        optimize_cmd; sensitivity_cmd; roofline_cmd; params_cmd; figures_cmd;
      ]
  in
  exit (Cmd.eval group)
