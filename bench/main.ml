(* The benchmark harness.

   Part 1 regenerates every table and figure of the paper's evaluation
   (the same rows/series, model + simulator) — run with no arguments, or
   pass figure ids ("fig5 fig9") to regenerate a subset, or --quick for
   shorter simulations. --jobs N renders/runs sweeps N domains wide
   (output is identical at any job count).

   Part 2 (skipped by --figures-only; alone with --bench-only) is a
   Bechamel microbenchmark suite: one Test.make per figure/table
   measuring the cost of the model work that backs it, plus
   core-primitive benches. These quantify the paper's "analytical model
   instead of a cycle-level simulator" speed pitch: estimating a graph
   takes microseconds.

   --json PATH additionally dumps the microbenchmark estimates and the
   wall-clock as machine-readable JSON (for CI artifacts/trend lines). *)

module U = Lognic.Units
module G = Lognic.Graph
module D = Lognic_devices
open Bechamel
open Toolkit

(* Hand-rolled argv walk: flags, value-taking options (--json PATH,
   --jobs N), and bare figure ids. A plain "is this string present"
   scan would misread option values as figure names. *)
type cli = {
  quick : bool;
  bench_only : bool;
  figures_only : bool;
  trace_overhead : bool;
  fault_overhead : bool;
  invariant_overhead : bool;
  contention_overhead : bool;
  metrics_overhead : bool;
  tenant_overhead : bool;
  flowcache_overhead : bool;
  events_per_sec : bool;
  jobs : int option;
  json : string option;
  requested : string list;
}

let usage_line =
  "usage: main.exe [--quick] [--bench-only|--figures-only] \
   [--trace-overhead] [--fault-overhead] [--invariant-overhead] \
   [--contention-overhead] [--metrics-overhead] [--tenant-overhead] \
   [--flowcache-overhead] [--events-per-sec] [--jobs N] [--json PATH] [FIG...]"

let help () =
  print_endline usage_line;
  print_string
    "\n\
     With no gate flags: regenerate the paper's tables/figures (part 1)\n\
     and run the Bechamel microbenchmark suite (part 2).\n\n\
     Gate flags run CI assertions instead; each gate prints what it\n\
     measured and exits through one of two shared verdicts:\n\n\
     exit codes:\n\
    \  0  all requested gates passed (or normal figure/bench run)\n\
    \  2  usage error\n\
    \  3  budget breach: a performance budget was exceeded (overhead\n\
    \     above its 5% cap, events/sec under the floor, words/event\n\
    \     over the ceiling)\n\
    \  4  identity breach: a byte-identity or correctness invariant\n\
    \     failed (an observation-only feature changed the measurement\n\
    \     JSON, or a gate's self-check found wrong results)\n\n\
     gates:\n\
    \  --trace-overhead       packet-lifecycle tracer <= 5% overhead\n\
    \  --fault-overhead       empty fault plan byte-identical; no-op\n\
    \                         plan <= 5% overhead\n\
    \  --invariant-overhead   check_invariants observation-only; the\n\
    \                         disabled path does no checker work\n\
    \  --contention-overhead  contention report byte-identical to a\n\
    \                         plain run; report cost <= 5%\n\
    \  --metrics-overhead     metrics streaming observation-only;\n\
    \                         full NDJSON streaming <= 5% overhead\n\
    \  --tenant-overhead      tenants-off (and single-tenant) runs\n\
    \                         byte-identical; 16-VF arbitration <= 5%;\n\
    \                         steady-state words/event flat at 2000 VFs\n\
    \  --flowcache-overhead   flow-cache-off runs byte-identical; the\n\
    \                         1M-flow steady state allocates no words\n\
    \                         per event beyond the flow draw\n\
    \  --events-per-sec       engine-reuse byte-identical; events/sec\n\
    \                         floor and words/event ceiling\n";
  exit 0

let cli =
  let usage () =
    prerr_endline usage_line;
    exit 2
  in
  let rec walk acc = function
    | [] -> { acc with requested = List.rev acc.requested }
    | ("--help" | "-h") :: _ -> help ()
    | "--quick" :: rest -> walk { acc with quick = true } rest
    | "--bench-only" :: rest -> walk { acc with bench_only = true } rest
    | "--figures-only" :: rest -> walk { acc with figures_only = true } rest
    | "--trace-overhead" :: rest -> walk { acc with trace_overhead = true } rest
    | "--fault-overhead" :: rest -> walk { acc with fault_overhead = true } rest
    | "--invariant-overhead" :: rest ->
      walk { acc with invariant_overhead = true } rest
    | "--contention-overhead" :: rest ->
      walk { acc with contention_overhead = true } rest
    | "--metrics-overhead" :: rest ->
      walk { acc with metrics_overhead = true } rest
    | "--tenant-overhead" :: rest ->
      walk { acc with tenant_overhead = true } rest
    | "--flowcache-overhead" :: rest ->
      walk { acc with flowcache_overhead = true } rest
    | "--events-per-sec" :: rest -> walk { acc with events_per_sec = true } rest
    | "--jobs" :: v :: rest -> (
      match int_of_string_opt v with
      | Some n when n >= 1 -> walk { acc with jobs = Some n } rest
      | _ -> usage ())
    | "--json" :: path :: rest -> walk { acc with json = Some path } rest
    | a :: _ when String.length a >= 2 && String.sub a 0 2 = "--" -> usage ()
    | fig :: rest -> walk { acc with requested = fig :: acc.requested } rest
  in
  walk
    {
      quick = false;
      bench_only = false;
      figures_only = false;
      trace_overhead = false;
      fault_overhead = false;
      invariant_overhead = false;
      contention_overhead = false;
      metrics_overhead = false;
      tenant_overhead = false;
      flowcache_overhead = false;
      events_per_sec = false;
      jobs = None;
      json = None;
      requested = [];
    }
    (List.tl (Array.to_list Sys.argv))

(* Every gate reports failure through one of these two verdicts, so the
   exit-code convention lives in exactly one place (and in --help):
   identity/correctness breaches exit 4, performance-budget breaches
   exit 3. Both print a FAIL line on stderr first. *)
let fail_identity fmt =
  Fmt.kstr
    (fun msg ->
      Fmt.epr "FAIL: %s@." msg;
      exit 4)
    fmt

let fail_budget fmt =
  Fmt.kstr
    (fun msg ->
      Fmt.epr "FAIL: %s@." msg;
      exit 3)
    fmt

let quick = cli.quick
let () = Option.iter Lognic_numerics.Parallel.set_default_jobs cli.jobs
let speed = if quick then Lognic_apps.Figures.Quick else Lognic_apps.Figures.Full

let render_figures () =
  match cli.requested with
  | [] -> Lognic_apps.Figures.all ~speed Fmt.stdout
  | names ->
    List.iter
      (fun name ->
        match Lognic_apps.Figures.render ~speed name Fmt.stdout with
        | Ok () -> ()
        | Error e -> Fmt.epr "error: %s@." e)
      names

(* --- Bechamel microbenches --- *)

let md5_graph = D.Liquidio.inline_accel_graph ~spec:D.Accel_spec.md5 ~packet_size:U.mtu ()
let md5_traffic = Lognic.Traffic.make ~rate:D.Liquidio.line_rate ~packet_size:U.mtu
let nvme_graph = D.Stingray.nvme_of_graph ~io:D.Ssd.rrd_4k ()
let nvme_traffic = Lognic.Traffic.make ~rate:2e9 ~packet_size:(4. *. U.kib)
let panic_profile = List.hd Lognic_apps.Panic_scenarios.profiles

let model_benches =
  [
    Test.make ~name:"table2:parameter-glossary"
      (Staged.stage (fun () -> List.length Lognic.Params.table2));
    (* one bench per figure: the model-side evaluation that figure needs *)
    Test.make ~name:"fig5:granularity-point"
      (Staged.stage (fun () ->
           let g =
             D.Liquidio.inline_accel_graph ~granularity:8192. ~spec:D.Accel_spec.crc
               ~packet_size:1024. ()
           in
           Lognic.Throughput.evaluate g ~hw:D.Liquidio.hardware
             ~traffic:
               (Lognic.Traffic.make ~rate:D.Liquidio.line_rate ~packet_size:1024.)));
    Test.make ~name:"fig6:nvmeof-estimate"
      (Staged.stage (fun () ->
           Lognic.Estimate.run ~queue_model:Lognic.Latency.Mmcn_model nvme_graph
             ~hw:D.Stingray.hardware ~traffic:nvme_traffic));
    Test.make ~name:"fig7:gc-gap-point"
      (Staged.stage (fun () ->
           let io = D.Ssd.mixed_4k ~read_fraction:0.5 in
           let g = D.Stingray.nvme_of_graph ~gc:D.Ssd.Gc_worst_case ~io () in
           Lognic.Throughput.evaluate g ~hw:D.Stingray.hardware
             ~traffic:(Lognic.Traffic.make ~rate:3e9 ~packet_size:io.D.Ssd.io_size)));
    Test.make ~name:"fig9:parallelism-point"
      (Staged.stage (fun () ->
           let g =
             D.Liquidio.inline_accel_graph ~cores:9 ~spec:D.Accel_spec.md5
               ~packet_size:U.mtu ()
           in
           Lognic.Throughput.evaluate g ~hw:D.Liquidio.hardware ~traffic:md5_traffic));
    Test.make ~name:"fig10:size-sweep-model"
      (Staged.stage (fun () ->
           List.map
             (fun size ->
               let g =
                 D.Liquidio.inline_accel_graph ~spec:D.Accel_spec.md5
                   ~packet_size:size ()
               in
               Lognic.Throughput.capacity g ~hw:D.Liquidio.hardware)
             [ 64.; 256.; 1024.; U.mtu ]));
    Test.make ~name:"fig11-12:microservice-allocation"
      (Staged.stage (fun () ->
           Lognic_apps.Microservices.allocation Lognic_apps.Microservices.Lognic_opt
             Lognic_apps.Microservices.rta_shm));
    Test.make ~name:"fig13-14:placement-search"
      (Staged.stage (fun () ->
           Lognic_apps.Nf_chain.placement_for Lognic_apps.Nf_chain.Lognic_opt
             ~packet_size:512.));
    Test.make ~name:"fig15:credit-suggestion"
      (Staged.stage (fun () ->
           Lognic_apps.Panic_scenarios.suggest_credits ~profile:panic_profile ()));
    Test.make ~name:"fig16-17:steering-optimum"
      (Staged.stage (fun () ->
           Lognic_apps.Panic_scenarios.optimal_split ~packet_size:512.
             ~offered:(80. *. U.gbps)));
    Test.make ~name:"fig18-19:parallelism-suggestion"
      (Staged.stage (fun () ->
           Lognic_apps.Panic_scenarios.suggest_parallelism ~split:(80., 20.) ()));
  ]

let primitive_benches =
  [
    Test.make ~name:"core:throughput-eval"
      (Staged.stage (fun () ->
           Lognic.Throughput.evaluate md5_graph ~hw:D.Liquidio.hardware
             ~traffic:md5_traffic));
    Test.make ~name:"core:latency-eval"
      (Staged.stage (fun () ->
           Lognic.Latency.evaluate md5_graph ~hw:D.Liquidio.hardware
             ~traffic:md5_traffic));
    Test.make ~name:"core:mm1n-closed-form"
      (Staged.stage (fun () ->
           Lognic_queueing.Mm1n.mean_waiting_time
             (Lognic_queueing.Mm1n.create ~lambda:0.9 ~mu:1. ~capacity:32)));
    Test.make ~name:"sim:1ms-simulated"
      (Staged.stage (fun () ->
           Lognic_sim.Netsim.run_single
             ~config:
               Lognic_sim.Netsim.Config.(
                 default |> with_horizon ~warmup:1e-4 1e-3)
             md5_graph ~hw:D.Liquidio.hardware ~traffic:md5_traffic));
    Test.make ~name:"sim:1ms-telemetry-sampled"
      (* same run with 50 samples of every entity: the observability
         overhead the sampling path must keep negligible *)
      (Staged.stage (fun () ->
           Lognic_sim.Netsim.run_single
             ~config:
               Lognic_sim.Netsim.Config.(
                 default |> with_horizon ~warmup:1e-4 1e-3
                 |> with_sampling 2e-5)
             md5_graph ~hw:D.Liquidio.hardware ~traffic:md5_traffic));
    Test.make ~name:"sim:1ms-traced"
      (* same run with the packet-lifecycle trace recorder attached
         (reservoir 64): the span-recording path whose overhead the
         --trace-overhead check bounds *)
      (Staged.stage (fun () ->
           Lognic_sim.Netsim.run_single
             ~config:
               Lognic_sim.Netsim.Config.(
                 default |> with_horizon ~warmup:1e-4 1e-3
                 |> with_trace { Lognic_sim.Trace.reservoir = 64 })
             md5_graph ~hw:D.Liquidio.hardware ~traffic:md5_traffic));
    Test.make ~name:"optimizer:nelder-mead-2d"
      (Staged.stage (fun () ->
           Lognic_numerics.Nelder_mead.minimize
             ~f:(fun x -> ((x.(0) -. 1.) ** 2.) +. ((x.(1) +. 2.) ** 2.))
             ~x0:[| 0.; 0. |] ()));
  ]

(* Returns (name, ns_per_run) rows in the order printed, for --json. *)
let run_benchmarks () =
  let benchmark test =
    let quota = Time.second (if quick then 0.25 else 1.0) in
    Benchmark.all
      (Benchmark.cfg ~limit:2000 ~quota ~kde:(Some 1000) ())
      Instance.[ monotonic_clock ]
      test
  in
  let analyze raw =
    let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
    Analyze.all ols Instance.monotonic_clock raw
  in
  Fmt.pr "@.== Bechamel microbenchmarks (ns per evaluation) ==@.";
  List.concat_map
    (fun test ->
      let results = analyze (benchmark test) in
      Hashtbl.fold
        (fun name ols rows ->
          match Analyze.OLS.estimates ols with
          | Some [ estimate ] ->
            Fmt.pr "%-36s %12.1f ns/run@." name estimate;
            (name, estimate) :: rows
          | Some _ | None ->
            Fmt.pr "%-36s (no estimate)@." name;
            rows)
        results [])
    (model_benches @ primitive_benches)

(* --- trace-overhead gate (--trace-overhead) ---

   Asserts the packet-lifecycle tracer stays under 5% overhead on a
   simulated run. Bechamel's OLS estimates are great for trends but
   noisy across CI machines, so the gate times interleaved whole runs
   and compares minima: interleaving cancels frequency drift, and
   since timing noise is strictly additive the minimum is the robust
   estimate of the true cost. Exit 3 on breach.

   The duration is fixed (--quick only trims iterations): tracing cost
   is O(reservoir), not O(packets), so a too-short run where the
   64-packet reservoir covers a big slice of all traffic would
   overstate the amortized overhead the budget is about. *)

let trace_overhead_gate () =
  let config trace =
    let c = Lognic_sim.Netsim.Config.(default |> with_horizon ~warmup:2e-4 1e-2) in
    match trace with
    | None -> c
    | Some t -> Lognic_sim.Netsim.Config.with_trace t c
  in
  let run trace =
    ignore
      (Lognic_sim.Netsim.run_single ~config:(config trace) md5_graph
         ~hw:D.Liquidio.hardware ~traffic:md5_traffic)
  in
  let traced = Some { Lognic_sim.Trace.reservoir = 64 } in
  (* warm both paths before timing anything *)
  run None;
  run traced;
  let time trace =
    let t0 = Unix.gettimeofday () in
    run trace;
    Unix.gettimeofday () -. t0
  in
  let iters = if quick then 9 else 21 in
  let untraced = ref infinity and traced_best = ref infinity in
  for _ = 1 to iters do
    untraced := Float.min !untraced (time None);
    traced_best := Float.min !traced_best (time traced)
  done;
  let overhead = (!traced_best -. !untraced) /. !untraced in
  Fmt.pr "trace overhead: untraced %.2f ms, traced %.2f ms -> %+.1f%%@."
    (!untraced *. 1e3) (!traced_best *. 1e3) (overhead *. 100.);
  if overhead > 0.05 then
    fail_budget "tracing overhead %.1f%% exceeds the 5%% budget"
      (overhead *. 100.)

(* --- fault-overhead gate (--fault-overhead) ---

   Two assertions about the fault-injection layer's cost on fault-free
   runs. First, identity: the legacy run_single and an empty-plan
   Run-spec execute must produce byte-identical measurement JSON (exit 4
   on mismatch — the spec API is a wrapper, not a reimplementation, and
   an empty plan must leave the simulator exactly on its pre-fault hot
   path). Second, overhead: realizing the fault machinery via a no-op
   plan (a zero-probability drop burst spanning the horizon, which
   activates the fault rng stream and the per-packet sub-interval
   accounting but sheds nothing) must cost at most 5% over the empty
   plan (exit 3 on breach). Timing protocol as in the trace gate:
   interleaved whole runs, compare minima. *)

let fault_overhead_gate () =
  let config =
    Lognic_sim.Netsim.Config.(default |> with_horizon ~warmup:2e-4 1e-2)
  in
  let spec faults =
    Lognic_sim.Netsim.Run.single ~config ~faults md5_graph
      ~hw:D.Liquidio.hardware ~traffic:md5_traffic
  in
  let noop_plan =
    [
      Lognic_sim.Faults.drop_burst ~probability:0. ~start:0.
        ~stop:config.Lognic_sim.Netsim.duration;
    ]
  in
  let legacy =
    Lognic_sim.Netsim.run_single ~config md5_graph ~hw:D.Liquidio.hardware
      ~traffic:md5_traffic
  in
  let empty = Lognic_sim.Netsim.execute (spec Lognic_sim.Faults.empty) in
  let json m =
    Lognic_sim.Telemetry.Json.to_string
      (Lognic_sim.Netsim.measurement_to_json m)
  in
  if json legacy <> json empty then
    fail_identity
      "empty-plan Run-spec execute is not byte-identical to run_single";
  Fmt.pr "empty-plan identity: OK (%d bytes of measurement JSON)@."
    (String.length (json legacy));
  let run faults = ignore (Lognic_sim.Netsim.execute (spec faults)) in
  run Lognic_sim.Faults.empty;
  run noop_plan;
  let time faults =
    let t0 = Unix.gettimeofday () in
    run faults;
    Unix.gettimeofday () -. t0
  in
  let iters = if quick then 9 else 21 in
  let bare = ref infinity and faulted = ref infinity in
  for _ = 1 to iters do
    bare := Float.min !bare (time Lognic_sim.Faults.empty);
    faulted := Float.min !faulted (time noop_plan)
  done;
  let overhead = (!faulted -. !bare) /. !bare in
  Fmt.pr "fault-plan overhead: empty %.2f ms, no-op plan %.2f ms -> %+.1f%%@."
    (!bare *. 1e3) (!faulted *. 1e3) (overhead *. 100.);
  if overhead > 0.05 then
    fail_budget "fault-plan overhead %.1f%% exceeds the 5%% budget"
      (overhead *. 100.)

(* --- invariant-overhead gate (--invariant-overhead) ---

   Two assertions about the runtime invariant checkers. First,
   identity: with [check_invariants = false] (the default) the
   measurement JSON must be byte-identical to a plain run — the
   [invariants] field is deliberately excluded from serialization,
   so the flag must be observable only through the in-memory report
   (exit 4 on mismatch). Second, the disabled-path budget: CI has no
   pre-invariants binary to diff against, but the enabled run is a
   strict superset of the disabled run's work (the same simulation
   plus every check), so a zero-cost disabled path must measure at
   or below the enabled path — if disabled exceeds enabled by more
   than the 5% noise budget, the disabled path is provably running
   work it should not (a flag inversion, or checks hoisted out of
   the [Some checker] branches). Exit 3 on breach. Timing protocol
   as in the trace gate: interleaved whole runs, compare minima. *)

let invariant_overhead_gate () =
  let config check_invariants =
    Lognic_sim.Netsim.Config.(
      default |> with_horizon ~warmup:2e-4 1e-2
      |> with_invariants check_invariants)
  in
  let measure check =
    Lognic_sim.Netsim.run_single ~config:(config check) md5_graph
      ~hw:D.Liquidio.hardware ~traffic:md5_traffic
  in
  let json m =
    Lognic_sim.Telemetry.Json.to_string
      (Lognic_sim.Netsim.measurement_to_json m)
  in
  let off = measure false and on_ = measure true in
  if json off <> json on_ then
    fail_identity
      "check_invariants changed the measurement JSON (must be \
       observation-only)";
  (match on_.Lognic_sim.Netsim.invariants with
  | Some r when Lognic_sim.Invariants.ok r ->
    Fmt.pr "checked run: %d invariant checks, 0 violations@."
      r.Lognic_sim.Invariants.checks
  | Some r ->
    fail_identity "%d invariant violations on the bench fixture"
      r.Lognic_sim.Invariants.total_violations
  | None -> fail_identity "check_invariants=true produced no report");
  let run check = ignore (measure check) in
  run false;
  run true;
  let time check =
    let t0 = Unix.gettimeofday () in
    run check;
    Unix.gettimeofday () -. t0
  in
  let iters = if quick then 9 else 21 in
  let disabled = ref infinity and enabled = ref infinity in
  for _ = 1 to iters do
    disabled := Float.min !disabled (time false);
    enabled := Float.min !enabled (time true)
  done;
  let checker_cost = (!enabled -. !disabled) /. !disabled in
  let disabled_overhead = (!disabled -. !enabled) /. !enabled in
  Fmt.pr
    "invariant checkers: disabled %.2f ms, enabled %.2f ms (checks cost \
     %+.1f%% when on)@."
    (!disabled *. 1e3) (!enabled *. 1e3) (checker_cost *. 100.);
  if disabled_overhead > 0.05 then
    fail_budget
      "disabled path is %.1f%% SLOWER than the checked path — it is doing \
       work the check_invariants=false branch must skip (budget 5%%)"
      (disabled_overhead *. 100.)

(* --- contention-overhead gate (--contention-overhead) ---

   Two assertions about the multi-resource contention layer on
   contention-free runs. First, identity: [Contention.run] without a
   contention spec must drive the {e identical} simulation a plain
   [Netsim.run] with the same (fully pinned) config would — the
   measurement JSON inside the report must be byte-identical to the
   standalone run (exit 4 on mismatch; the joint model and the report
   join are observation-only). Second, overhead: the full contention
   report (joint model, tail analysis, per-entity join) must cost at
   most 5% over the bare simulation it wraps — the model side is
   microseconds against a 10 ms simulated run, so a breach means the
   report path started re-running simulations or scanning telemetry
   super-linearly (exit 3). Timing protocol as in the trace gate:
   interleaved whole runs, compare minima. *)

let contention_overhead_gate () =
  let config =
    Lognic_sim.Netsim.Config.(
      default |> with_horizon ~warmup:2e-4 1e-2
      (* pinned explicitly: Explain.run_mix would otherwise default it *)
      |> with_sampling (1e-2 /. 256.))
  in
  let mix =
    [
      ( Lognic.Traffic.make
          ~rate:(D.Liquidio.line_rate /. 2.)
          ~packet_size:U.mtu,
        0.6 );
      (Lognic.Traffic.make ~rate:(D.Liquidio.line_rate /. 4.) ~packet_size:512., 0.4);
    ]
  in
  let json m =
    Lognic_sim.Telemetry.Json.to_string
      (Lognic_sim.Netsim.measurement_to_json m)
  in
  let report =
    Lognic_sim.Contention.run ~config md5_graph ~hw:D.Liquidio.hardware ~mix
  in
  let plain =
    Lognic_sim.Netsim.run ~config md5_graph ~hw:D.Liquidio.hardware ~mix
  in
  if json report.Lognic_sim.Contention.base.Lognic_sim.Explain.mix_measurement
     <> json plain
  then
    fail_identity
      "contention-off report measurement is not byte-identical to a plain \
       run";
  Fmt.pr "contention-off identity: OK (%d bytes of measurement JSON)@."
    (String.length (json plain));
  let run_report () =
    ignore
      (Lognic_sim.Contention.run ~config md5_graph ~hw:D.Liquidio.hardware ~mix)
  in
  let run_plain () =
    ignore (Lognic_sim.Netsim.run ~config md5_graph ~hw:D.Liquidio.hardware ~mix)
  in
  run_report ();
  run_plain ();
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let iters = if quick then 9 else 21 in
  let bare = ref infinity and reported = ref infinity in
  for _ = 1 to iters do
    bare := Float.min !bare (time run_plain);
    reported := Float.min !reported (time run_report)
  done;
  let overhead = (!reported -. !bare) /. !bare in
  Fmt.pr
    "contention-report overhead: plain %.2f ms, full report %.2f ms -> \
     %+.1f%%@."
    (!bare *. 1e3) (!reported *. 1e3) (overhead *. 100.);
  if overhead > 0.05 then
    fail_budget "contention-report overhead %.1f%% exceeds the 5%% budget"
      (overhead *. 100.)

(* --- metrics-overhead gate (--metrics-overhead) ---

   Two assertions about the live streaming-metrics layer ({!Metrics}).
   First, identity: a run with the full metrics pipeline enabled — a
   snapshot at the default reference cadence (one per 1e-3 s simulated,
   [Metrics.default_config.interval]), a firing SLO rule, and every
   snapshot serialized to NDJSON — must produce measurement JSON
   byte-identical to a plain run (exit 4 on mismatch): every registered
   probe is read-only and the snapshot ticks split no rng, so metrics
   must be observation-only by construction. Second, overhead: that
   same full streaming configuration must cost at most 5% over the
   bare run (exit 3 on breach) — the budget covers the per-delivery
   histogram observe, the per-tick probe sweep, SLO evaluation, and
   NDJSON rendering, i.e. exactly what [lognic watch] exercises in
   production. Per-tick cost scales linearly with cadence, so the
   budget is stated at the default; MODEL.md documents the scaling.
   Timing protocol as in the trace gate: interleaved whole runs,
   compare minima. *)

let metrics_overhead_gate () =
  let module M = Lognic_sim.Metrics in
  let config metrics =
    let c = Lognic_sim.Netsim.Config.(default |> with_horizon ~warmup:2e-4 1e-2) in
    match metrics with
    | None -> c
    | Some m -> Lognic_sim.Netsim.Config.with_metrics m c
  in
  let sink = Buffer.create 65536 in
  let streaming =
    Some
      {
        M.default_config with
        M.slo = [ M.Slo.parse_exn "*.utilization>0.5" ];
        on_snapshot =
          Some
            (fun snap ->
              M.snapshot_to_buffer sink snap;
              Buffer.add_char sink '\n');
      }
  in
  let measure metrics =
    Buffer.clear sink;
    Lognic_sim.Netsim.run_single ~config:(config metrics) md5_graph
      ~hw:D.Liquidio.hardware ~traffic:md5_traffic
  in
  let json m =
    Lognic_sim.Telemetry.Json.to_string
      (Lognic_sim.Netsim.measurement_to_json m)
  in
  let off = measure None in
  let on_ = measure streaming in
  if json off <> json on_ then
    fail_identity
      "metrics streaming changed the measurement JSON (probes must be \
       read-only)";
  if Buffer.length sink = 0 then
    fail_identity "metrics-enabled run streamed no snapshots";
  Fmt.pr
    "metrics-off identity: OK (%d bytes of measurement JSON; enabled run \
     streamed %d bytes of NDJSON)@."
    (String.length (json off)) (Buffer.length sink);
  let run metrics = ignore (measure metrics) in
  run None;
  run streaming;
  let time metrics =
    let t0 = Unix.gettimeofday () in
    run metrics;
    Unix.gettimeofday () -. t0
  in
  let iters = if quick then 9 else 21 in
  let bare = ref infinity and streamed = ref infinity in
  for _ = 1 to iters do
    bare := Float.min !bare (time None);
    streamed := Float.min !streamed (time streaming)
  done;
  let overhead = (!streamed -. !bare) /. !bare in
  Fmt.pr "metrics overhead: bare %.2f ms, streaming %.2f ms -> %+.1f%%@."
    (!bare *. 1e3) (!streamed *. 1e3) (overhead *. 100.);
  if overhead > 0.05 then
    fail_budget "metrics streaming overhead %.1f%% exceeds the 5%% budget"
      (overhead *. 100.)

(* --- tenant-overhead gate (--tenant-overhead) ---

   Three assertions about the multi-tenant SR-IOV layer. First,
   identity (exit 4): a run configured through the Config builder
   pipeline must measure byte-identically to the same run configured by
   record update, and a single-tenant run must measure byte-identically
   to an untenanted one — with fewer than two tenants there is no
   arbitration to do, so the tenant layer must leave the simulator on
   the exact untenanted construction path (same rng split sequence,
   same flat scheduler). Second, budget (exit 3): a 16-VF population —
   hierarchical two-stage WRR arbitration, per-arrival tenant draws,
   per-VF attribution — must cost at most 5% over the untenanted run at
   the same moderate load. Third, scale (exit 3): the steady-state
   minor-heap allocation rate must not grow with the population — the
   per-event words measured as a {e finite difference} between a 2x and
   a 1x horizon (which cancels per-run setup such as building the
   2000-queue arbiter) must match the untenanted rate to within noise,
   proving the hot loop allocates zero words per tenant. Timing
   protocol as in the trace gate: interleaved whole runs, compare
   minima. *)

let tenant_overhead_gate () =
  let module T = Lognic_sim.Tenant in
  let module NS = Lognic_sim.Netsim in
  (* moderate load: half line rate keeps queues busy without saturating *)
  let traffic =
    Lognic.Traffic.make ~rate:(D.Liquidio.line_rate /. 2.) ~packet_size:U.mtu
  in
  let base d = NS.Config.(default |> with_horizon ~warmup:2e-4 d) in
  let run config =
    NS.run_single ~config md5_graph ~hw:D.Liquidio.hardware ~traffic
  in
  let json m =
    Lognic_sim.Telemetry.Json.to_string (NS.measurement_to_json m)
  in
  let plain_json = json (run (base 1e-2)) in
  let record_config =
    { NS.default_config with duration = 1e-2; warmup = 2e-4 }
  in
  if json (run record_config) <> plain_json then
    fail_identity
      "Config-builder run is not byte-identical to the record-literal \
       config run";
  let solo = NS.Config.with_tenants (T.set [ T.spec "solo" ]) (base 1e-2) in
  if json (run solo) <> plain_json then
    fail_identity
      "single-tenant run is not byte-identical to the untenanted run";
  Fmt.pr
    "tenants-off identity: OK (builder and single-tenant both match, %d \
     bytes of measurement JSON)@."
    (String.length plain_json);
  (* Budget: interleaved whole runs at a horizon long enough
     (1e-1 s ≈ 150 ms wall) that the 16-VF setup — a handful of
     16-entry arrays — is invisible next to the steady-state loop.
     Timing is organized into temporally-local blocks of interleaved
     (untenanted, 16-VF) pairs: each block yields its own
     minima-of-pairs ratio, and the gate takes the {e minimum} ratio
     across blocks. A real regression inflates the tenanted side of
     every block, so the min stays high; machine noise (multi-second
     slow periods on a shared box dilate whichever runs they land on)
     rarely spares no block, so transient interference cannot fail the
     gate. Global minima over all runs are worse here: the two
     configurations' floors can come from different noise periods,
     which earlier showed as ±5% swings in the ratio — and a
     finite-difference slope protocol before that amplified drift into
     ±15% per-iteration swings. *)
  let tenants16 d = NS.Config.with_tenants (T.uniform 16) (base d) in
  let time config =
    let t0 = Unix.gettimeofday () in
    ignore (run config);
    Unix.gettimeofday () -. t0
  in
  ignore (run (base 1e-1));
  ignore (run (tenants16 1e-1));
  let blocks = if quick then 3 else 7 in
  let pairs_per_block = 3 in
  let ratios =
    Array.init blocks (fun _ ->
        let bare = ref infinity and tenanted = ref infinity in
        for _ = 1 to pairs_per_block do
          bare := Float.min !bare (time (base 1e-1));
          tenanted := Float.min !tenanted (time (tenants16 1e-1))
        done;
        (!tenanted -. !bare) /. !bare)
  in
  let overhead = Array.fold_left Float.min infinity ratios in
  Fmt.pr
    "tenant overhead: %+.1f%% at 16 VFs (best of %d blocks x %d interleaved \
     pairs; per-block %s)@."
    (overhead *. 100.) blocks pairs_per_block
    (String.concat " "
       (Array.to_list
          (Array.map (fun r -> Fmt.str "%+.1f%%" (r *. 100.)) ratios)));
  if overhead > 0.05 then
    fail_budget "16-VF arbitration overhead %.1f%% exceeds the 5%% budget"
      (overhead *. 100.);
  (* steady-state allocation: finite-difference words/event so per-run
     setup (arbiter arrays, accumulator pools, summary rows) cancels *)
  let engine = Lognic_sim.Engine.create () in
  let measure config =
    let spec =
      NS.Run.single ~config md5_graph ~hw:D.Liquidio.hardware ~traffic
    in
    ignore (NS.execute_with ~engine spec);
    let w0 = Gc.minor_words () in
    ignore (NS.execute_with ~engine spec);
    (Gc.minor_words () -. w0, Lognic_sim.Engine.executed engine)
  in
  let steady with_tenants =
    let config d =
      let c = base d in
      match with_tenants with
      | None -> c
      | Some n -> NS.Config.with_tenants (T.uniform n) c
    in
    let w1, e1 = measure (config 1e-2) in
    let w2, e2 = measure (config 2e-2) in
    (w2 -. w1) /. float_of_int (e2 - e1)
  in
  let wpe_plain = steady None in
  let wpe_2000 = steady (Some 2000) in
  let delta = wpe_2000 -. wpe_plain in
  Fmt.pr
    "steady-state allocation: untenanted %.3f words/event, 2000 VFs %.3f \
     words/event (delta %+.3f)@."
    wpe_plain wpe_2000 delta;
  if delta > 2.0 then
    fail_budget
      "2000-VF steady state allocates %.3f words/event above the untenanted \
       rate — per-tenant allocation crept into the hot loop (budget 2.0, \
       which covers the per-arrival tenant draw only)"
      delta

(* --- flow-cache gate (--flowcache-overhead) ---

   The state-dependent-split machinery at production rule scale. Two
   checks. First, identity (exit 4): a config that round-trips through
   [with_flow_cache]/[without_flow_cache] must run byte-identical to
   the untouched default — the flow rng only splits when a cache is
   configured, so a disabled run must leave every stream (and every
   byte of measurement JSON) exactly as a build without the feature
   would. Second, scale (exit 3): with a 1,000,000-flow Zipf
   population and production-sized tables (8192-entry EMC, 65536-entry
   megaflow) the steady-state minor-heap allocation rate — measured as
   a finite difference between a 2x and a 1x horizon, which cancels
   the O(flows) sampler/table setup — must not exceed the plain rate
   by more than the per-arrival flow draw: the alias lookup and both
   fixed-capacity LRUs are int-array machines that allocate nothing
   per packet. *)

let flowcache_overhead_gate () =
  let module NS = Lognic_sim.Netsim in
  let module App = Lognic_apps.Flow_cache in
  let spec_1m = Lognic.Flowcache.spec ~flows:1_000_000 () in
  let fc_graph = App.graph App.default in
  let traffic = App.traffic App.default in
  let base d = NS.Config.(default |> with_horizon ~warmup:2e-4 d) in
  let run config =
    NS.run_single ~config fc_graph ~hw:App.hardware ~traffic
  in
  let json m =
    Lognic_sim.Telemetry.Json.to_string (NS.measurement_to_json m)
  in
  let plain_json = json (run (base 1e-2)) in
  let round_trip =
    NS.Config.(base 1e-2 |> with_flow_cache spec_1m |> without_flow_cache)
  in
  if json (run round_trip) <> plain_json then
    fail_identity
      "flow-cache round-tripped config is not byte-identical to the plain \
       run — clearing the cache left residue in the rng stream layout";
  Fmt.pr
    "flow-cache-off identity: OK (round-tripped config matches, %d bytes of \
     measurement JSON)@."
    (String.length plain_json);
  (* steady-state allocation: finite-difference words/event so the
     1M-entry sampler and table setup cancels between horizons *)
  let engine = Lognic_sim.Engine.create () in
  let measure config =
    let spec =
      NS.Run.single ~config fc_graph ~hw:App.hardware ~traffic
    in
    ignore (NS.execute_with ~engine spec);
    let w0 = Gc.minor_words () in
    ignore (NS.execute_with ~engine spec);
    (Gc.minor_words () -. w0, Lognic_sim.Engine.executed engine)
  in
  let steady with_cache =
    let config d =
      if with_cache then NS.Config.with_flow_cache spec_1m (base d)
      else base d
    in
    let w1, e1 = measure (config 1e-2) in
    let w2, e2 = measure (config 2e-2) in
    (w2 -. w1) /. float_of_int (e2 - e1)
  in
  let wpe_plain = steady false in
  let wpe_cached = steady true in
  let delta = wpe_cached -. wpe_plain in
  Fmt.pr
    "steady-state allocation: plain %.3f words/event, 1M-flow cache %.3f \
     words/event (delta %+.3f)@."
    wpe_plain wpe_cached delta;
  if delta > 2.0 then
    fail_budget
      "1M-flow steady state allocates %.3f words/event above the plain rate \
       — per-flow or per-packet allocation crept into the lookup hot loop \
       (budget 2.0, which covers the per-arrival flow draw only)"
      delta

(* --- events/sec headline gate (--events-per-sec) ---

   The engine-throughput headline: simulated events executed per
   wall-clock second on the reference md5 inline-accel workload, plus
   minor-heap words allocated per event. Three checks:

   Identity (exit 4): executing through a reused engine
   ([execute_with ~engine] on an engine that has already run) must
   produce measurement JSON byte-identical to the legacy
   fresh-everything [run_single] — engine reuse is a performance
   feature, never a results feature.

   Allocation ceiling (exit 3): words/event is deterministic, so it
   gates tightly against [words_per_event_ceiling] in
   bench/baseline_engine.json. The disabled-observer hot path
   allocates nothing per event; the measured residual is the stdlib
   Random.State draw floor plus rare calendar rebuilds. A blown
   ceiling means boxing crept back into the hot path — or the bench
   ran in the dev profile, whose hardwired -opaque disables the
   cross-module inlining the zero-allocation path is built on: run
   with [dune exec --profile release].

   Throughput floor (exit 3): events/sec must stay above 90% of
   [events_per_sec_floor] from the same baseline file. The committed
   floor sits well under healthy numbers so CI hardware variance
   cannot flake the gate; it catches collapses (an accidental O(log n)
   or re-boxed hot path), while finer regressions are the job of the
   uploaded artifact's trend line. Timing protocol as in the other
   gates: whole runs, compare minima.

   --json PATH writes the measured numbers for that artifact. *)

let baseline_number ~path ~key =
  let contents =
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let needle = "\"" ^ key ^ "\"" in
  let nlen = String.length needle and clen = String.length contents in
  let rec find i =
    if i + nlen > clen then
      failwith (Printf.sprintf "%s: missing key %s" path key)
    else if String.sub contents i nlen = needle then i + nlen
    else find (i + 1)
  in
  let i = ref (find 0) in
  while !i < clen && (contents.[!i] = ':' || contents.[!i] = ' ') do incr i done;
  let j = ref !i in
  let numeric c =
    (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '+' || c = 'e' || c = 'E'
  in
  while !j < clen && numeric contents.[!j] do incr j done;
  float_of_string (String.sub contents !i (!j - !i))

let events_per_sec_gate () =
  let config =
    Lognic_sim.Netsim.Config.(default |> with_horizon ~warmup:2e-4 1e-2)
  in
  let spec () =
    Lognic_sim.Netsim.Run.single ~config md5_graph ~hw:D.Liquidio.hardware
      ~traffic:md5_traffic
  in
  let json m =
    Lognic_sim.Telemetry.Json.to_string
      (Lognic_sim.Netsim.measurement_to_json m)
  in
  let legacy =
    Lognic_sim.Netsim.run_single ~config md5_graph ~hw:D.Liquidio.hardware
      ~traffic:md5_traffic
  in
  let engine = Lognic_sim.Engine.create () in
  ignore (Lognic_sim.Netsim.execute_with ~engine (spec ()));
  let reused = Lognic_sim.Netsim.execute_with ~engine (spec ()) in
  if json legacy <> json reused then
    fail_identity
      "reused-engine execute_with is not byte-identical to run_single";
  Fmt.pr "engine-reuse identity: OK (%d bytes of measurement JSON)@."
    (String.length (json legacy));
  let run () = ignore (Lognic_sim.Netsim.execute_with ~engine (spec ())) in
  let w0 = Gc.minor_words () in
  run ();
  let words = Gc.minor_words () -. w0 in
  (* [execute_with] resets the engine on entry, so after a run the
     counter holds exactly that run's event count *)
  let events = Lognic_sim.Engine.executed engine in
  let words_per_event = words /. float_of_int events in
  let iters = if quick then 9 else 21 in
  let best = ref infinity in
  for _ = 1 to iters do
    let t0 = Unix.gettimeofday () in
    run ();
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  let events_per_sec = float_of_int events /. !best in
  Fmt.pr
    "engine headline: %d events in %.2f ms -> %.3e events/sec, %.2f \
     words/event, %d calendar rebuilds@."
    events (!best *. 1e3) events_per_sec words_per_event
    (Lognic_sim.Engine.queue_resizes engine);
  Option.iter
    (fun path ->
      let oc = open_out path in
      Printf.fprintf oc
        "{\n\
        \  \"schema\": \"engine_bench\",\n\
        \  \"schema_version\": 1,\n\
        \  \"events\": %d,\n\
        \  \"best_ms\": %.3f,\n\
        \  \"events_per_sec\": %.1f,\n\
        \  \"words_per_event\": %.3f,\n\
        \  \"queue_resizes\": %d\n\
         }\n"
        events (!best *. 1e3) events_per_sec words_per_event
        (Lognic_sim.Engine.queue_resizes engine);
      close_out oc)
    cli.json;
  let baseline = "bench/baseline_engine.json" in
  if not (Sys.file_exists baseline) then
    Fmt.epr "warning: %s not found (run from the repo root?), floor and \
             ceiling unchecked@."
      baseline
  else begin
    let floor_eps = baseline_number ~path:baseline ~key:"events_per_sec_floor" in
    let ceil_wpe =
      baseline_number ~path:baseline ~key:"words_per_event_ceiling"
    in
    if words_per_event > ceil_wpe then
      fail_budget
        "%.2f words/event exceeds the %.2f ceiling — boxing returned to the \
         hot path, or this is a dev-profile build (-opaque defeats the \
         inlining; use dune exec --profile release)"
        words_per_event ceil_wpe;
    if events_per_sec < 0.9 *. floor_eps then
      fail_budget "%.3e events/sec is >10%% below the committed %.3e floor"
        events_per_sec floor_eps;
    Fmt.pr "events/sec floor OK (>= 0.9 x %.2e), words/event ceiling OK \
            (<= %.1f)@."
      floor_eps ceil_wpe
  end

(* --- JSON dump (--json PATH) --- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json path ~rows ~wall_s =
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"results\": [";
  List.iteri
    (fun i (name, ns) ->
      Printf.fprintf oc "%s\n    { \"name\": \"%s\", \"ns_per_run\": %.1f }"
        (if i = 0 then "" else ",")
        (json_escape name) ns)
    rows;
  Printf.fprintf oc "\n  ],\n  \"wall_s\": %.3f\n}\n" wall_s;
  close_out oc

let () =
  if
    cli.trace_overhead || cli.fault_overhead || cli.invariant_overhead
    || cli.contention_overhead || cli.metrics_overhead || cli.tenant_overhead
    || cli.flowcache_overhead || cli.events_per_sec
  then begin
    if cli.trace_overhead then trace_overhead_gate ();
    if cli.fault_overhead then fault_overhead_gate ();
    if cli.invariant_overhead then invariant_overhead_gate ();
    if cli.contention_overhead then contention_overhead_gate ();
    if cli.metrics_overhead then metrics_overhead_gate ();
    if cli.tenant_overhead then tenant_overhead_gate ();
    if cli.flowcache_overhead then flowcache_overhead_gate ();
    if cli.events_per_sec then events_per_sec_gate ();
    exit 0
  end;
  let started = Unix.gettimeofday () in
  if not cli.bench_only then render_figures ();
  let figures_wall = Unix.gettimeofday () -. started in
  let rows = if cli.figures_only then [] else run_benchmarks () in
  Option.iter
    (fun path ->
      (* wall_s is the figure-regeneration wall-clock when figures ran
         (the quantity --jobs accelerates); otherwise the total. *)
      let wall_s =
        if cli.bench_only then Unix.gettimeofday () -. started else figures_wall
      in
      write_json path ~rows ~wall_s)
    cli.json
