(* Extension #1 (paper §3.7): consolidating multiple tenants' execution
   graphs on one SmartNIC. Two tenants — an NVMe-oF storage target and
   an inline-crypto network service — share the device's interconnect
   and memory; the consolidated model shows how one tenant's medium
   pressure erodes the other's ceiling.

   Run with: dune exec examples/multi_tenant.exe *)

module G = Lognic.Graph
module U = Lognic.Units
module E = Lognic.Extensions

let hw =
  Lognic.Params.hardware ~bw_interface:(60. *. U.gbps) ~bw_memory:(50. *. U.gbps)

(* Tenant A: packet crypto, interface-heavy (delta = alpha = 1 on both
   hops). *)
let crypto_graph =
  let svc t = G.service ~throughput:t () in
  let g = G.empty in
  let g, i = G.add_vertex ~kind:G.Ingress ~label:"rx" ~service:(svc (100. *. U.gbps)) g in
  let g, c =
    G.add_vertex ~kind:G.Ip ~label:"crypto"
      ~service:(G.service ~throughput:(30. *. U.gbps) ~queue_capacity:64 ())
      g
  in
  let g, e = G.add_vertex ~kind:G.Egress ~label:"tx" ~service:(svc (100. *. U.gbps)) g in
  let g = G.add_edge ~delta:1. ~alpha:1. ~src:i ~dst:c g in
  let g = G.add_edge ~delta:1. ~alpha:1. ~src:c ~dst:e g in
  g

(* Tenant B: storage writes, memory-heavy (data staged through DRAM). *)
let storage_graph =
  let svc t = G.service ~throughput:t () in
  let g = G.empty in
  let g, i = G.add_vertex ~kind:G.Ingress ~label:"rx" ~service:(svc (100. *. U.gbps)) g in
  let g, s =
    G.add_vertex ~kind:G.Ip ~label:"staging"
      ~service:(G.service ~throughput:(25. *. U.gbps) ~queue_capacity:64 ())
      g
  in
  let g, e = G.add_vertex ~kind:G.Egress ~label:"ssd" ~service:(svc (100. *. U.gbps)) g in
  let g = G.add_edge ~delta:1. ~alpha:0.5 ~beta:1. ~src:i ~dst:s g in
  let g = G.add_edge ~delta:1. ~beta:1. ~src:s ~dst:e g in
  g

let tenant name graph gbps =
  {
    E.name;
    graph;
    traffic = Lognic.Traffic.make ~rate:(gbps *. U.gbps) ~packet_size:U.mtu;
  }

let show title tenants =
  let c = E.consolidate ~hw tenants in
  Fmt.pr "@.%s@." title;
  List.iter
    (fun (r : E.tenant_report) ->
      Fmt.pr "  %-8s attained %.2f Gbps, mean latency %.2f us@." r.tenant
        (U.to_gbps r.throughput.Lognic.Throughput.attained)
        (U.to_usec r.latency.Lognic.Latency.mean))
    c.tenants;
  Fmt.pr "  total %.2f Gbps; interface util %.2f, memory util %.2f@."
    (U.to_gbps c.total_attained) c.interface_utilization c.memory_utilization

let () =
  Fmt.pr "Multi-tenant consolidation (Extension #1)@.";
  show "crypto alone (20 Gbps offered):" [ tenant "crypto" crypto_graph 20. ];
  show "storage alone (20 Gbps offered):" [ tenant "storage" storage_graph 20. ];
  show "consolidated (20 + 20 Gbps offered):"
    [ tenant "crypto" crypto_graph 20.; tenant "storage" storage_graph 20. ];
  show "consolidated, storage surge (20 + 35 Gbps offered):"
    [ tenant "crypto" crypto_graph 20.; tenant "storage" storage_graph 35. ];
  Fmt.pr
    "@.The crypto tenant's ceiling falls as the storage tenant's memory \
     staging spills onto the shared interface — the contention Extension #1 \
     exists to expose.@."
