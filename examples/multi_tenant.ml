(* Multi-tenancy from both ends of the stack.

   Part 1 — Extension #1 (paper §3.7): consolidating multiple tenants'
   execution graphs on one SmartNIC. Two tenants — an NVMe-oF storage
   target and an inline-crypto network service — share the device's
   interconnect and memory; the consolidated model shows how one
   tenant's medium pressure erodes the other's ceiling.

   Part 2 — SR-IOV virtualization of ONE graph: a driven simulation
   where 8 virtual functions share the md5 inline-acceleration path
   behind the two-stage WRR arbiter ([Lognic_sim.Tenant]), joined
   against the weighted multi-class M/M/c/N decomposition, with
   fairness/isolation indices. A second run turns one background VF
   into a noisy neighbor and shows what the indices catch.

   Run with: dune exec examples/multi_tenant.exe *)

module G = Lognic.Graph
module U = Lognic.Units
module E = Lognic.Extensions
module Sim = Lognic_sim
module D = Lognic_devices
module T = Sim.Tenant

let hw =
  Lognic.Params.hardware ~bw_interface:(60. *. U.gbps) ~bw_memory:(50. *. U.gbps)

(* Tenant A: packet crypto, interface-heavy (delta = alpha = 1 on both
   hops). *)
let crypto_graph =
  let svc t = G.service ~throughput:t () in
  let g = G.empty in
  let g, i = G.add_vertex ~kind:G.Ingress ~label:"rx" ~service:(svc (100. *. U.gbps)) g in
  let g, c =
    G.add_vertex ~kind:G.Ip ~label:"crypto"
      ~service:(G.service ~throughput:(30. *. U.gbps) ~queue_capacity:64 ())
      g
  in
  let g, e = G.add_vertex ~kind:G.Egress ~label:"tx" ~service:(svc (100. *. U.gbps)) g in
  let g = G.add_edge ~delta:1. ~alpha:1. ~src:i ~dst:c g in
  let g = G.add_edge ~delta:1. ~alpha:1. ~src:c ~dst:e g in
  g

(* Tenant B: storage writes, memory-heavy (data staged through DRAM). *)
let storage_graph =
  let svc t = G.service ~throughput:t () in
  let g = G.empty in
  let g, i = G.add_vertex ~kind:G.Ingress ~label:"rx" ~service:(svc (100. *. U.gbps)) g in
  let g, s =
    G.add_vertex ~kind:G.Ip ~label:"staging"
      ~service:(G.service ~throughput:(25. *. U.gbps) ~queue_capacity:64 ())
      g
  in
  let g, e = G.add_vertex ~kind:G.Egress ~label:"ssd" ~service:(svc (100. *. U.gbps)) g in
  let g = G.add_edge ~delta:1. ~alpha:0.5 ~beta:1. ~src:i ~dst:s g in
  let g = G.add_edge ~delta:1. ~beta:1. ~src:s ~dst:e g in
  g

let tenant name graph gbps =
  {
    E.name;
    graph;
    traffic = Lognic.Traffic.make ~rate:(gbps *. U.gbps) ~packet_size:U.mtu;
  }

let show title tenants =
  let c = E.consolidate ~hw tenants in
  Fmt.pr "@.%s@." title;
  List.iter
    (fun (r : E.tenant_report) ->
      Fmt.pr "  %-8s attained %.2f Gbps, mean latency %.2f us@." r.tenant
        (U.to_gbps r.throughput.Lognic.Throughput.attained)
        (U.to_usec r.latency.Lognic.Latency.mean))
    c.tenants;
  Fmt.pr "  total %.2f Gbps; interface util %.2f, memory util %.2f@."
    (U.to_gbps c.total_attained) c.interface_utilization c.memory_utilization

(* ---- Part 2: SR-IOV virtualization of one graph ---------------------- *)

let vf_population ~noisy =
  T.set
    (T.spec ~weight:8 ~share:4. ~slo_p99:1e-3 "gold"
    :: T.spec ~weight:4 ~share:2. ~slo_p99:5e-3 "silver"
    :: List.init 6 (fun i ->
           let share = if noisy && i = 0 then 24. else 1. in
           T.spec ~share (Printf.sprintf "vf%d" i)))

let run_vfs title ~noisy =
  let graph =
    D.Liquidio.inline_accel_graph ~spec:D.Accel_spec.md5 ~packet_size:U.mtu ()
  in
  let config =
    Sim.Netsim.Config.(
      default |> with_seed 42 |> with_horizon ~warmup:1e-3 1e-2)
  in
  let report =
    Sim.Explain.run_tenants ~config graph ~hw:D.Liquidio.hardware
      ~traffic:
        (Lognic.Traffic.make
           ~rate:(0.8 *. D.Liquidio.line_rate)
           ~packet_size:U.mtu)
      ~tenants:(vf_population ~noisy)
  in
  Fmt.pr "@.%s@." title;
  List.iter
    (fun (r : Sim.Explain.tenant_row) ->
      Fmt.pr "  %-7s w=%d share=%.3f  sim %.2f Gbps (model %.2f)%s@."
        r.Sim.Explain.tn_name r.Sim.Explain.tn_weight r.Sim.Explain.tn_share
        (U.to_gbps r.Sim.Explain.tn_sim_throughput)
        (U.to_gbps r.Sim.Explain.tn_model_throughput)
        (match r.Sim.Explain.tn_slo_ok with
        | Some true -> "  [SLO ok]"
        | Some false -> "  [SLO MISS]"
        | None -> ""))
    report.Sim.Explain.tr_rows;
  let f = report.Sim.Explain.tr_fairness in
  Fmt.pr
    "  fairness: max-min %.3f, Jain %.3f, interference (worst/best \
     latency) %.2f@."
    f.T.maxmin_ratio f.T.jain f.T.interference

let () =
  Fmt.pr "Multi-tenant consolidation (Extension #1)@.";
  show "crypto alone (20 Gbps offered):" [ tenant "crypto" crypto_graph 20. ];
  show "storage alone (20 Gbps offered):" [ tenant "storage" storage_graph 20. ];
  show "consolidated (20 + 20 Gbps offered):"
    [ tenant "crypto" crypto_graph 20.; tenant "storage" storage_graph 20. ];
  show "consolidated, storage surge (20 + 35 Gbps offered):"
    [ tenant "crypto" crypto_graph 20.; tenant "storage" storage_graph 35. ];
  Fmt.pr
    "@.The crypto tenant's ceiling falls as the storage tenant's memory \
     staging spills onto the shared interface — the contention Extension #1 \
     exists to expose.@.";
  Fmt.pr "@.SR-IOV virtualization: 8 VFs behind the two-stage WRR arbiter@.";
  run_vfs "balanced population (gold/silver differentiated, 6 background VFs):"
    ~noisy:false;
  run_vfs "noisy neighbor (vf0 offers 24x its fair share):" ~noisy:true;
  Fmt.pr
    "@.The arbiter's weighted grants keep gold's SLO intact while the \
     noisy VF saturates its own queues — the max-min and interference \
     indices quantify the isolation the virtualization layer buys.@."
