(* Case study #1 (paper §4.2): bump-in-the-wire acceleration on the
   LiquidIO-II CN2360 — reproduce the three bottleneck regimes the
   paper identifies and print Figs 5/9/10-style series.

   Run with: dune exec examples/inline_acceleration.exe *)

module U = Lognic.Units
module A = Lognic_devices.Accel_spec
open Lognic_apps

let () =
  Fmt.pr "Inline acceleration on the LiquidIO-II CN2360@.@.";

  (* Regime 1: the NIC-core cluster (IP1) bounds throughput until enough
     cores are allocated — Fig 9's knees. *)
  Fmt.pr "How many NIC cores does each engine need to saturate?@.";
  List.iter
    (fun spec ->
      Fmt.pr "  %-7s %2d cores (bottleneck below the knee: %s)@." spec.A.name
        (Inline_accel.required_cores ~spec)
        (Inline_accel.bottleneck_at ~spec ~packet_size:U.mtu ~cores:2))
    [ A.md5; A.kasumi; A.hfa ];

  (* Regime 2: the accelerator itself — bandwidth follows
     min(P_IP2 x pktsize, line rate), Fig 10. *)
  Fmt.pr "@.MD5 bandwidth vs packet size (model | simulator):@.";
  List.iter
    (fun (p : Inline_accel.point) ->
      Fmt.pr "  %5.0fB  %6.2f | %6.2f Gbps@." p.x (U.to_gbps p.model)
        (U.to_gbps p.measured))
    (Inline_accel.fig10_packet_size_sweep ~duration:0.02 ~spec:A.md5 ());

  (* Regime 3: the interconnect/memory bandwidth — oversized accelerator
     fetches throttle the engine, Fig 5. *)
  Fmt.pr "@.CRC throughput vs data-access granularity (1KB traffic):@.";
  List.iter
    (fun (p : Inline_accel.point) ->
      Fmt.pr "  %6.0fB  model %5.3f MOPS, measured %5.3f MOPS@." p.x
        (U.to_mops p.model) (U.to_mops p.measured))
    (Inline_accel.fig5_granularity_sweep ~duration:0.02 ~spec:A.crc ());
  Fmt.pr
    "@.Past ~2-4KB the CMI (50 Gbps) bounds the CRC engine; at 16KB it runs at \
     13.6%% of peak — the number §4.2 reports.@."
