(* Case study #5 (paper §4.6): using LogNIC for hardware design-space
   exploration on the PANIC programmable NIC.

   Run with: dune exec examples/panic_design.exe *)

module U = Lognic.Units
open Lognic_apps

let () =
  Fmt.pr "PANIC design-space exploration@.@.";

  (* Scenario 1: how many request-queue credits does a compute unit
     need? Fewer credits save SRAM and cut queueing latency. *)
  Fmt.pr "Scenario 1 - credit sizing (paper suggests 5/4/4/4):@.";
  List.iter
    (fun profile ->
      Fmt.pr "  %-9s [%s]: %d credits (latency -%.1f%% vs the 8-credit default)@."
        profile.Panic_scenarios.pname
        (String.concat "/"
           (List.map
              (fun (s, _) -> Printf.sprintf "%.0fB" s)
              profile.Panic_scenarios.sizes))
        (Panic_scenarios.suggest_credits ~profile ())
        (100. *. Panic_scenarios.latency_drop_vs_default ~profile ()))
    Panic_scenarios.profiles;

  (* Scenario 2: accelerator-aware traffic steering. A1:A2:A3 have a
     4:7:3 throughput ratio; 20% of traffic is pinned to A1 and the
     remaining 80% splits X / 80-X between A2 and A3. *)
  Fmt.pr "@.Scenario 2 - steering at the central scheduler (512B):@.";
  List.iter
    (fun (s : Panic_scenarios.steering_point) ->
      Fmt.pr "  %-7s X=%4.1f  latency %5.2f us  throughput %5.1f Gbps@."
        s.split_label s.x_percent (U.to_usec s.latency) (U.to_gbps s.throughput))
    (Panic_scenarios.fig16_17_steering ~packet_size:512. ());

  (* Scenario 3: how many parallel engines should IP4 get? *)
  Fmt.pr "@.Scenario 3 - IP4 hardware parallelism (paper suggests 6 and 4):@.";
  List.iter
    (fun split ->
      let a, b = split in
      Fmt.pr "  IP1 split %2.0f/%2.0f -> degree %d@." a b
        (Panic_scenarios.suggest_parallelism ~split ()))
    [ (50., 50.); (80., 20.) ]
