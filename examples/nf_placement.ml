(* Case study #4 (paper §4.5): placing a middlebox NF chain across the
   BlueField-2's ARM cores and accelerators with the LogNIC optimizer.

   Run with: dune exec examples/nf_placement.exe *)

module U = Lognic.Units
open Lognic_apps

let () =
  Fmt.pr "NF chain placement on the BlueField-2 (FW->LB->DPI->NAT->PE)@.@.";
  Fmt.pr "LogNIC-opt placement flips with packet size:@.";
  List.iter
    (fun size ->
      Fmt.pr "  %4.0fB: %s@." size (Nf_chain.describe_placement ~packet_size:size))
    [ 64.; 256.; 512.; 1024.; U.mtu ];
  Fmt.pr "@.throughput (Gbps) / latency (us) per scheme:@.";
  List.iter
    (fun (o : Nf_chain.outcome) ->
      Fmt.pr "  %5.0fB %-17s %6.2f Gbps  %6.1f us@." o.packet_size
        (Nf_chain.scheme_name o.scheme)
        (U.to_gbps o.throughput) (U.to_usec o.latency))
    (Nf_chain.sweep ());
  Fmt.pr
    "@.Small packets: off-chip crossings dominate, so NFs stay on the ARM \
     cores. Large packets: per-byte software cost dominates, so byte-heavy \
     NFs move to accelerators — but not all of them, because each crossing \
     also burns shared interconnect bandwidth.@."
