(* The §5.3 generalization: applying LogNIC to a programmable RMT
   switch, here running an in-network key-value cache (NetCache-style).
   Hot keys are answered from switch register memory; misses go to the
   storage server and take a second switch pass on the way back.

   Run with: dune exec examples/in_network_cache.exe *)

module U = Lognic.Units
open Lognic_apps

let () =
  Fmt.pr "In-network KV cache on an RMT switch@.@.";
  Fmt.pr "Plain forwarding sanity check (1500B, 10%% recirculation):@.";
  let g =
    Lognic_devices.Rmt_switch.forwarding_graph ~recirculate:0.1 ~packet_size:U.mtu ()
  in
  let capacity = Lognic.Throughput.capacity g ~hw:Lognic_devices.Rmt_switch.hardware in
  Fmt.pr "  switch forwarding capacity: %.0f Gbps@.@." (U.to_gbps capacity);
  Fmt.pr "Cache-hit-ratio sweep (model vs simulator):@.";
  Fmt.pr "  hit%%   sustainable MRPS (model | sim)   latency@70%%load@.";
  List.iter
    (fun (p : Netcache.point) ->
      Fmt.pr "  %3.0f%%   %8.2f | %8.2f              %6.2f us@."
        (100. *. p.hit_ratio) (p.model_rps /. 1e6) (p.measured_rps /. 1e6)
        (U.to_usec p.model_latency))
    (Netcache.hit_ratio_sweep Netcache.default);
  Fmt.pr
    "@.The sustainable rate follows server_rate/(1 - hit_ratio): every cached \
     key multiplies the backend. At 90%% hits the system serves %.0fx the \
     no-cache rate — NetCache's headline effect, reproduced from a LogNIC \
     graph with switch-specific interfaces (packet-rate-bound pipeline, \
     register memory via beta, recirculation by unrolling).@."
    (Netcache.speedup_at ~hit_ratio:0.9 Netcache.default)
