(* §2.1's SmartNIC taxonomy, quantified: on-path devices put the SoC on
   every packet's way; off-path devices bypass it for traffic that
   needs no computation. Where is the crossover?

   Run with: dune exec examples/onpath_vs_offpath.exe *)

module U = Lognic.Units
open Lognic_apps

let () =
  Fmt.pr "On-path vs off-path deployment (100GbE card, 40 Gbps SoC)@.@.";
  Fmt.pr
    "  compute%%   capacity on|off (Gbps)   latency on|off (us, 60%% load)@.";
  List.iter
    (fun (p : Offpath_study.point) ->
      Fmt.pr "  %6.0f%%    %6.1f | %6.1f           %5.2f | %5.2f@."
        (100. *. p.compute_fraction)
        (U.to_gbps p.on_path_capacity)
        (U.to_gbps p.off_path_capacity)
        (U.to_usec p.on_path_latency)
        (U.to_usec p.off_path_latency))
    (Offpath_study.sweep Offpath_study.default);
  (match Offpath_study.crossover Offpath_study.default with
  | Some f ->
    Fmt.pr
      "@.The bypass advantage evaporates once ~%.0f%% of traffic needs SoC \
       computation; below that, the off-path design forwards the rest at \
       line rate while the on-path SoC burns cycles shuffling it.@."
      (100. *. f)
  | None -> Fmt.pr "@.off-path keeps an advantage through compute%% = 100.@.")
