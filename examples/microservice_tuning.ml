(* Case study #3 (paper §4.4): tuning Microservice parallelism on an
   E3/LiquidIO platform with the LogNIC optimizer.

   Run with: dune exec examples/microservice_tuning.exe *)

module U = Lognic.Units
open Lognic_apps

let () =
  Fmt.pr "Microservice parallelism tuning (E3 on LiquidIO CN2360)@.@.";
  List.iter
    (fun workload ->
      Fmt.pr "%s (stage costs: %s cycles)@." workload.Microservices.name
        (String.concat ", "
           (List.map
              (fun (name, c) -> Printf.sprintf "%s=%.0f" name c)
              workload.Microservices.stages));
      Fmt.pr "  LogNIC core allocation: [%s] of %d cores@."
        (String.concat "; "
           (List.map string_of_int
              (Microservices.allocation Microservices.Lognic_opt workload)))
        Lognic_devices.Liquidio.total_cores;
      List.iter
        (fun (o : Microservices.outcome) ->
          Fmt.pr "  %-16s %.3f MRPS, %.1f us@."
            (Microservices.scheme_name o.scheme)
            (o.throughput /. 1e6) (U.to_usec o.latency))
        (Microservices.compare_schemes workload);
      Fmt.pr "@.")
    Microservices.all;
  (* Aggregate gains, the paper's headline numbers for this case. *)
  let gains =
    List.map
      (fun w ->
        match Microservices.compare_schemes w with
        | [ rr; eq; opt ] ->
          ( (opt.throughput /. rr.throughput) -. 1.,
            (opt.throughput /. eq.throughput) -. 1. )
        | _ -> assert false)
      Microservices.all
  in
  let avg f = List.fold_left (fun a g -> a +. f g) 0. gains /. 5. in
  Fmt.pr
    "average throughput gain: %.1f%% over round-robin, %.1f%% over equal \
     partition (paper: 34.8%% / 36.4%%)@."
    (100. *. avg fst) (100. *. avg snd)
