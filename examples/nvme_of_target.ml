(* Case study #2 (paper §4.3): the NVMe-oF target on a Broadcom
   Stingray JBOF. Shows (a) the characterize-and-curve-fit treatment of
   an opaque IP, (b) latency-vs-throughput model validation, and (c)
   the garbage-collection effect the model cannot capture (Fig 7).

   Run with: dune exec examples/nvme_of_target.exe *)

module U = Lognic.Units
module Ssd = Lognic_devices.Ssd
open Lognic_apps

let () =
  Fmt.pr "NVMe-oF target on the Stingray PS1100R@.@.";

  (* (a) Calibration: the SSD's internals are opaque, so sweep the load
     on the simulated drive and curve-fit the open-queue latency law. *)
  let fit = Nvme_of.calibration_demo ~io:Ssd.rrd_4k () in
  Fmt.pr
    "curve-fit of the opaque SSD (4KB random read): t0 = %.1f us, capacity = \
     %.2f GB/s (r^2 = %.3f)@."
    (U.to_usec fit.Lognic.Calibrate.service_time)
    (fit.Lognic.Calibrate.capacity /. 1e9)
    fit.Lognic.Calibrate.r_squared;

  (* (b) Fig 6: model vs measured latency under rising load. *)
  List.iter
    (fun (name, io) ->
      let points = Nvme_of.fig6_profile_sweep ~duration:0.2 ~points:6 ~io () in
      Fmt.pr "@.%s (offered GB/s: model us | measured us):@." name;
      List.iter
        (fun (p : Nvme_of.point) ->
          Fmt.pr "  %5.2f: %7.1f | %7.1f@." (p.offered /. 1e9)
            (U.to_usec p.model_latency)
            (U.to_usec p.measured_latency))
        points;
      Fmt.pr "  mean latency error: %.2f%%@."
        (100. *. Nvme_of.fig6_error_rate points))
    [ ("4KB random read", Ssd.rrd_4k); ("4KB sequential write", Ssd.swr_4k) ];

  (* (c) Fig 7: on a fragmented drive, GC makes mixed read/write
     bandwidth exceed what worst-case-calibrated parameters predict. *)
  Fmt.pr "@.Mixed 4KB random I/O on a fragmented drive:@.";
  List.iter
    (fun (p : Nvme_of.mixed_point) ->
      Fmt.pr "  read %3.0f%%: measured %4.0f MB/s, model %4.0f MB/s (model low by %4.1f%%)@."
        (100. *. p.read_ratio)
        (U.to_mbytes_per_s p.measured_bandwidth)
        (U.to_mbytes_per_s p.model_bandwidth)
        (100. *. (p.measured_bandwidth -. p.model_bandwidth) /. p.measured_bandwidth))
    (Nvme_of.fig7_read_ratio_sweep ~duration:0.2 ());
  Fmt.pr
    "@.The mid-ratio gap is the GC effect LogNIC cannot capture (the paper \
     reports ~14.6%%).@."
