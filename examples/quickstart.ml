(* Quickstart: model a tiny SmartNIC program, estimate its performance
   with the LogNIC analytical model, cross-check against the packet
   simulator, and ask the optimizer a question.

   Run with: dune exec examples/quickstart.exe *)

module G = Lognic.Graph
module U = Lognic.Units

let () =
  (* 1. Describe the offloaded program as an execution graph:
        a 25 GbE port feeding a 4-core NIC processor that forwards
        everything to a crypto engine and out the TX port. *)
  let g = G.empty in
  let g, rx =
    G.add_vertex ~kind:G.Ingress ~label:"rx"
      ~service:(G.service ~throughput:(25. *. U.gbps) ())
      g
  in
  let g, cores =
    G.add_vertex ~kind:G.Ip ~label:"nic-cores"
      ~service:
        (G.service
           ~throughput:(8. *. U.gbps)
           ~parallelism:4 ~queue_capacity:64 ~overhead:(1. *. U.usec) ())
      g
  in
  let g, crypto =
    G.add_vertex ~kind:G.Ip ~label:"crypto"
      ~service:(G.service ~throughput:(12. *. U.gbps) ~queue_capacity:32 ())
      g
  in
  let g, tx =
    G.add_vertex ~kind:G.Egress ~label:"tx"
      ~service:(G.service ~throughput:(25. *. U.gbps) ())
      g
  in
  (* Edges carry the whole workload (delta = 1); the hop into the crypto
     engine crosses the memory subsystem (beta = 1). *)
  let g = G.add_edge ~delta:1. ~src:rx ~dst:cores g in
  let g = G.add_edge ~delta:1. ~beta:1. ~src:cores ~dst:crypto g in
  let g = G.add_edge ~delta:1. ~src:crypto ~dst:tx g in

  (* 2. Device-wide hardware parameters and a traffic profile. *)
  let hw =
    Lognic.Params.hardware
      ~bw_interface:(40. *. U.gbps)
      ~bw_memory:(50. *. U.gbps)
  in
  let traffic = Lognic.Traffic.make ~rate:(6. *. U.gbps) ~packet_size:U.mtu in

  (* 3. Estimation mode: throughput with bottleneck attribution, and
        mean latency with a per-path breakdown. *)
  let report = Lognic.Estimate.run g ~hw ~traffic in
  Fmt.pr "--- LogNIC estimate ---@.%a@." (Lognic.Estimate.pp_report g) report;

  (* 4. Cross-check against the packet-level simulator. *)
  let m = Lognic_sim.Netsim.run_single g ~hw ~traffic in
  Fmt.pr "--- simulator ---@.";
  Fmt.pr "throughput: %.3f Gbps, mean latency: %.2f us, p99: %.2f us@."
    (U.to_gbps m.summary.Lognic_sim.Telemetry.throughput)
    (U.to_usec m.summary.Lognic_sim.Telemetry.mean_latency)
    (U.to_usec m.summary.Lognic_sim.Telemetry.p99_latency);

  (* 5. Optimizer mode: how many queue entries does the crypto engine
        really need to sustain this load? *)
  let solution =
    Lognic.Optimizer.optimize g ~hw ~traffic
      ~knobs:[ Lognic.Optimizer.Queue_capacity (crypto, 1, 32) ]
      (Lognic.Optimizer.Minimize_latency_min_throughput (5.9 *. U.gbps))
  in
  Fmt.pr "--- optimizer ---@.";
  List.iter
    (fun a -> Fmt.pr "%a@." Lognic.Optimizer.pp_assignment a)
    solution.assignment;
  Fmt.pr "feasible: %b, latency: %.2f us@." solution.feasible
    (U.to_usec solution.report.latency.Lognic.Latency.mean);

  (* 6. Tail latency (an extension beyond the paper: §4.7 says the
        model cannot estimate the tail — ours can, see Lognic.Tail). *)
  let tail = Lognic.Tail.overall (Lognic.Tail.evaluate g ~hw ~traffic) in
  Fmt.pr "--- tail estimate ---@.p50 %.2f us, p90 %.2f us, p99 %.2f us@."
    (U.to_usec tail.p50) (U.to_usec tail.p90) (U.to_usec tail.p99);

  (* 7. Sensitivity: which parameter is worth upgrading? *)
  let elasticities = Lognic.Sensitivity.analyze g ~hw ~traffic in
  Fmt.pr "--- sensitivity ---@.most binding parameter: %a@."
    (Lognic.Sensitivity.pp_parameter g)
    (Lognic.Sensitivity.most_binding elasticities)
