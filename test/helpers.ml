(* Shared assertion helpers for the test suites. *)

let check_close ?(tol = 1e-9) msg expected actual =
  if
    not
      (Float.is_finite actual && Float.is_finite expected
       && abs_float (actual -. expected)
          <= tol *. Float.max 1. (abs_float expected))
  then
    Alcotest.failf "%s: expected %.9g, got %.9g (tol %g)" msg expected actual tol

let check_within ~pct msg expected actual =
  (* relative agreement within pct percent *)
  if expected = 0. then check_close msg expected actual
  else begin
    let rel = abs_float (actual -. expected) /. abs_float expected in
    if rel > pct /. 100. then
      Alcotest.failf "%s: expected %.6g within %.1f%%, got %.6g (off by %.2f%%)"
        msg expected pct actual (100. *. rel)
  end

let check_raises_invalid msg f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" msg
  | exception Invalid_argument _ -> ()

let quick name f = Alcotest.test_case name `Quick f
let slow name f = Alcotest.test_case name `Slow f

let contains_substring haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  n = 0 || scan 0

let prop name ?(count = 200) arbitrary predicate =
  QCheck_alcotest.to_alcotest ~speed_level:`Quick
    (QCheck.Test.make ~name ~count arbitrary predicate)
