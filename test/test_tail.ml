(* Tests for the tail-latency extension and its supporting gamma
   numerics, plus the bursty-arrival and multi-queue/WRR simulator
   features and the head-of-line blocking study. *)

open Helpers
module N = Lognic_numerics
module G = Lognic.Graph
module U = Lognic.Units
module T = Lognic.Traffic
module S = Lognic_sim

(* Gamma numerics *)

let gamma_log_gamma () =
  (* Γ(1) = Γ(2) = 1, Γ(5) = 24, Γ(1/2) = sqrt(pi) *)
  check_close ~tol:1e-10 "ln Γ(1)" 0. (N.Gamma.log_gamma 1.);
  check_close ~tol:1e-10 "ln Γ(2)" 0. (N.Gamma.log_gamma 2.);
  check_close ~tol:1e-9 "ln Γ(5)" (log 24.) (N.Gamma.log_gamma 5.);
  check_close ~tol:1e-9 "ln Γ(0.5)" (0.5 *. log Float.pi) (N.Gamma.log_gamma 0.5);
  check_raises_invalid "domain" (fun () -> N.Gamma.log_gamma 0.)

let gamma_cdf_exponential_case () =
  (* shape 1 is the exponential distribution *)
  List.iter
    (fun x ->
      check_close ~tol:1e-9
        (Printf.sprintf "exp CDF at %g" x)
        (1. -. exp (-.x))
        (N.Gamma.cdf ~shape:1. ~scale:1. x))
    [ 0.1; 0.5; 1.; 2.; 5. ]

let gamma_cdf_erlang_case () =
  (* Erlang(2, 1): CDF = 1 - e^-x (1 + x) *)
  List.iter
    (fun x ->
      check_close ~tol:1e-9
        (Printf.sprintf "erlang2 CDF at %g" x)
        (1. -. (exp (-.x) *. (1. +. x)))
        (N.Gamma.cdf ~shape:2. ~scale:1. x))
    [ 0.2; 1.; 3.; 8. ]

let gamma_quantile_inverts_cdf () =
  List.iter
    (fun (shape, scale) ->
      List.iter
        (fun p ->
          let x = N.Gamma.quantile ~shape ~scale p in
          check_close ~tol:1e-6
            (Printf.sprintf "roundtrip shape=%g p=%g" shape p)
            p
            (N.Gamma.cdf ~shape ~scale x))
        [ 0.01; 0.5; 0.9; 0.99; 0.999 ])
    [ (0.5, 2.); (1., 1.); (3.7, 0.25); (40., 10.) ]

let gamma_of_moments () =
  (match N.Gamma.of_moments ~mean:6. ~variance:12. with
  | Some (shape, scale) ->
    check_close "shape" 3. shape;
    check_close "scale" 2. scale
  | None -> Alcotest.fail "valid moments rejected");
  Alcotest.(check bool)
    "degenerate" true
    (N.Gamma.of_moments ~mean:1. ~variance:0. = None)

(* Tail model *)

let hw = Lognic.Params.hardware ~bw_interface:(50. *. U.gbps) ~bw_memory:(60. *. U.gbps)

let chain ?(queue = 32) ?(rate = 4. *. U.gbps) () =
  let svc t = G.service ~throughput:t () in
  let g = G.empty in
  let g, i = G.add_vertex ~kind:G.Ingress ~label:"in" ~service:(svc (25. *. U.gbps)) g in
  let g, w =
    G.add_vertex ~kind:G.Ip ~label:"ip"
      ~service:(G.service ~throughput:rate ~queue_capacity:queue ())
      g
  in
  let g, e = G.add_vertex ~kind:G.Egress ~label:"out" ~service:(svc (25. *. U.gbps)) g in
  let g = G.add_edge ~delta:1. ~src:i ~dst:w g in
  let g = G.add_edge ~delta:1. ~src:w ~dst:e g in
  g

let tail_mean_agrees_with_latency () =
  let g = chain () in
  List.iter
    (fun load ->
      let traffic = T.make ~rate:(load *. 4. *. U.gbps) ~packet_size:1500. in
      let tail = Lognic.Tail.evaluate g ~hw ~traffic in
      let latency = Lognic.Latency.evaluate g ~hw ~traffic in
      check_within ~pct:0.5 "tail mean = latency mean"
        latency.Lognic.Latency.mean
        (Lognic.Tail.overall tail).q_mean)
    [ 0.3; 0.7; 0.95 ]

let tail_quantiles_ordered () =
  let g = chain () in
  let traffic = T.make ~rate:(3. *. U.gbps) ~packet_size:1500. in
  let q = Lognic.Tail.overall (Lognic.Tail.evaluate g ~hw ~traffic) in
  Alcotest.(check bool) "p50 < mean < p99" true (q.p50 < q.q_mean && q.q_mean < q.p99);
  Alcotest.(check bool) "p50 < p90 < p99" true (q.p50 < q.p90 && q.p90 < q.p99)

let tail_matches_simulator () =
  let g = chain () in
  List.iter
    (fun load ->
      let traffic = T.make ~rate:(load *. 4. *. U.gbps) ~packet_size:1500. in
      let tail = Lognic.Tail.overall (Lognic.Tail.evaluate g ~hw ~traffic) in
      let m =
        S.Netsim.run_single
          ~config:S.Netsim.Config.(default |> with_horizon 0.5)
          g ~hw ~traffic
      in
      check_within ~pct:10.
        (Printf.sprintf "p50 at load %g" load)
        m.summary.S.Telemetry.p50_latency tail.p50;
      check_within ~pct:15.
        (Printf.sprintf "p99 at load %g" load)
        m.summary.S.Telemetry.p99_latency tail.p99)
    [ 0.4; 0.7; 0.9 ]

let tail_quantile_function () =
  let g = chain () in
  let traffic = T.make ~rate:(2.8 *. U.gbps) ~packet_size:1500. in
  let r = Lognic.Tail.evaluate g ~hw ~traffic in
  let q = Lognic.Tail.overall r in
  check_close ~tol:1e-6 "quantile(0.5) = p50" q.p50 (Lognic.Tail.quantile r 0.5);
  check_close ~tol:1e-6 "quantile(0.99) = p99" q.p99 (Lognic.Tail.quantile r 0.99);
  Alcotest.(check bool)
    "p999 beyond p99" true
    (Lognic.Tail.quantile r 0.999 > q.p99);
  check_raises_invalid "domain" (fun () -> ignore (Lognic.Tail.quantile r 1.5))

let tail_mmcn_below_mm1n () =
  (* a 4-engine vertex has a lighter tail than Eq 12 predicts *)
  let g = chain () in
  let g =
    G.update_service g 1 (fun s -> { s with G.parallelism = 4 })
  in
  let traffic = T.make ~rate:(3.4 *. U.gbps) ~packet_size:1500. in
  let mm1n =
    Lognic.Tail.overall (Lognic.Tail.evaluate ~model:Lognic.Latency.Mm1n_model g ~hw ~traffic)
  in
  let mmcn =
    Lognic.Tail.overall (Lognic.Tail.evaluate ~model:Lognic.Latency.Mmcn_model g ~hw ~traffic)
  in
  Alcotest.(check bool) "multi-server tail lighter" true (mmcn.p99 < mm1n.p99)

let tail_multipath_mixture () =
  (* fast path and slow path: the overall p99 must reflect the slow one *)
  let svc t = G.service ~throughput:t () in
  let g = G.empty in
  let g, i = G.add_vertex ~kind:G.Ingress ~label:"in" ~service:(svc (25. *. U.gbps)) g in
  let g, fast = G.add_vertex ~kind:G.Ip ~label:"fast" ~service:(svc (20. *. U.gbps)) g in
  let g, slow = G.add_vertex ~kind:G.Ip ~label:"slow" ~service:(svc (1. *. U.gbps)) g in
  let g, e = G.add_vertex ~kind:G.Egress ~label:"out" ~service:(svc (25. *. U.gbps)) g in
  let g = G.add_edge ~delta:0.9 ~src:i ~dst:fast g in
  let g = G.add_edge ~delta:0.1 ~src:i ~dst:slow g in
  let g = G.add_edge ~delta:0.9 ~src:fast ~dst:e g in
  let g = G.add_edge ~delta:0.1 ~src:slow ~dst:e g in
  let traffic = T.make ~rate:(2. *. U.gbps) ~packet_size:1500. in
  let r = Lognic.Tail.evaluate g ~hw ~traffic in
  let paths = Lognic.Tail.per_path r in
  Alcotest.(check int) "two paths" 2 (List.length paths);
  let slow_path =
    List.find (fun (p : Lognic.Tail.path_tail) -> List.mem slow p.tpath) paths
  in
  let fast_path =
    List.find (fun (p : Lognic.Tail.path_tail) -> List.mem fast p.tpath) paths
  in
  Alcotest.(check bool)
    "slow path slower" true
    (slow_path.tq.p50 > fast_path.tq.p50);
  (* the 10%-weighted slow path dominates the overall p99 but not p50 *)
  let overall = Lognic.Tail.overall r in
  Alcotest.(check bool)
    "overall p50 tracks the fast path" true
    (overall.p50 < 2. *. fast_path.tq.p50);
  Alcotest.(check bool)
    "overall p99 pulled by the slow path" true
    (overall.p99 > fast_path.tq.p99)

(* Bursty arrivals *)

let bursty_preserves_mean_rate () =
  let g = chain ~rate:(20. *. U.gbps) () in
  let traffic = T.make ~rate:(2. *. U.gbps) ~packet_size:1500. in
  let m =
    S.Netsim.run_single
      ~config:
        S.Netsim.Config.(
          default |> with_horizon 1.0
          |> with_arrival (S.Traffic_gen.Bursty { burstiness = 3.; mean_on = 5e-4 }))
      g ~hw ~traffic
  in
  (* the IP has 10x headroom, so nothing drops and goodput = offered *)
  check_within ~pct:6. "long-run rate preserved" (2. *. U.gbps)
    m.summary.S.Telemetry.throughput;
  Alcotest.(check bool) "no loss with headroom" true (m.summary.S.Telemetry.loss_rate < 0.01)

let bursty_fattens_tails () =
  let g = chain () in
  let traffic = T.make ~rate:(2.4 *. U.gbps) ~packet_size:1500. in
  let run arrival =
    (S.Netsim.run_single
       ~config:S.Netsim.Config.(default |> with_horizon ~warmup:0.05 0.4 |> with_arrival arrival)
       g ~hw ~traffic)
      .summary
  in
  let poisson = run S.Traffic_gen.Poisson in
  let paced = run S.Traffic_gen.Paced in
  let bursty = run (S.Traffic_gen.Bursty { burstiness = 3.; mean_on = 5e-4 }) in
  Alcotest.(check bool)
    "paced < poisson < bursty in p99" true
    (paced.S.Telemetry.p99_latency < poisson.S.Telemetry.p99_latency
    && poisson.S.Telemetry.p99_latency < bursty.S.Telemetry.p99_latency)

let bursty_validation () =
  let g = chain () in
  let traffic = T.make ~rate:1e9 ~packet_size:1500. in
  check_raises_invalid "burstiness <= 1" (fun () ->
      S.Netsim.run_single
        ~config:
          S.Netsim.Config.(
            default
            |> with_arrival (S.Traffic_gen.Bursty { burstiness = 1.; mean_on = 1e-3 }))
        g ~hw ~traffic)

(* Multi-queue WRR Ip_node *)

let wrr_weights_respected () =
  let e = S.Engine.create () in
  let node =
    S.Ip_node.create_multiqueue e
      ~rng:(N.Rng.create ~seed:3)
      ~label:"n" ~engines:1 ~rate_per_engine:1. ~entries_per_queue:100
      ~weights:[| 3; 1 |] ~service_dist:S.Ip_node.Deterministic
  in
  (* preload both queues, then count service order over one WRR cycle *)
  let order = ref [] in
  for _ = 1 to 8 do
    ignore (S.Ip_node.submit ~queue:0 node ~work:1. (fun () -> order := 0 :: !order));
    ignore (S.Ip_node.submit ~queue:1 node ~work:1. (fun () -> order := 1 :: !order))
  done;
  S.Engine.run e;
  let first_cycle =
    List.filteri (fun i _ -> i < 4) (List.rev !order)
  in
  (* the first dispatch happens on submit (queue 0), then the pattern
     0,0,0,1 repeats: 3-to-1 share overall *)
  Alcotest.(check int) "16 served" 16 (List.length !order);
  let zeros = List.length (List.filter (fun q -> q = 0) first_cycle) in
  Alcotest.(check int) "3 of first 4 from the heavy queue" 3 zeros

let wrr_skips_empty_queues () =
  let e = S.Engine.create () in
  let node =
    S.Ip_node.create_multiqueue e
      ~rng:(N.Rng.create ~seed:3)
      ~label:"n" ~engines:1 ~rate_per_engine:1. ~entries_per_queue:10
      ~weights:[| 9; 1 |] ~service_dist:S.Ip_node.Deterministic
  in
  (* only the light queue has work: it must still be served immediately *)
  let served = ref 0 in
  for _ = 1 to 5 do
    ignore (S.Ip_node.submit ~queue:1 node ~work:1. (fun () -> incr served))
  done;
  S.Engine.run e;
  Alcotest.(check int) "work conserving" 5 !served

let wrr_per_queue_capacity () =
  let e = S.Engine.create () in
  let node =
    S.Ip_node.create_multiqueue e
      ~rng:(N.Rng.create ~seed:3)
      ~label:"n" ~engines:1 ~rate_per_engine:1e-9 ~entries_per_queue:2
      ~weights:[| 1; 1 |] ~service_dist:S.Ip_node.Deterministic
  in
  (* engine grabs the first; then 2 fit per queue *)
  for _ = 1 to 4 do
    ignore (S.Ip_node.submit ~queue:0 node ~work:1. ignore)
  done;
  Alcotest.(check int) "queue 0 drops" 1 (S.Ip_node.drops_of_queue node 0);
  Alcotest.(check bool)
    "queue 1 unaffected" true
    (S.Ip_node.submit ~queue:1 node ~work:1. ignore);
  Alcotest.(check int) "queue 1 no drops" 0 (S.Ip_node.drops_of_queue node 1);
  Alcotest.(check int) "lengths" 2 (S.Ip_node.queue_length node 0);
  check_raises_invalid "bad queue index" (fun () ->
      ignore (S.Ip_node.submit ~queue:7 node ~work:1. ignore))

let wrr_validation () =
  let e = S.Engine.create () in
  check_raises_invalid "no queues" (fun () ->
      S.Ip_node.create_multiqueue e
        ~rng:(N.Rng.create ~seed:1)
        ~label:"n" ~engines:1 ~rate_per_engine:1. ~entries_per_queue:4
        ~weights:[||] ~service_dist:S.Ip_node.Deterministic);
  check_raises_invalid "zero weight" (fun () ->
      S.Ip_node.create_multiqueue e
        ~rng:(N.Rng.create ~seed:1)
        ~label:"n" ~engines:1 ~rate_per_engine:1. ~entries_per_queue:4
        ~weights:[| 1; 0 |] ~service_dist:S.Ip_node.Deterministic)

(* Head-of-line blocking study *)

let hol_wrr_isolates_mice () =
  let c = Lognic_apps.Hol_study.default in
  let shared = Lognic_apps.Hol_study.run_shared_fifo ~duration:1.0 c in
  let wrr = Lognic_apps.Hol_study.run_wrr ~duration:1.0 c in
  Alcotest.(check bool)
    "mice mean improves by > 2x" true
    (wrr.mice_mean < 0.5 *. shared.mice_mean);
  Alcotest.(check bool)
    "mice p99 improves" true
    (wrr.mice_p99 < shared.mice_p99);
  (* elephants pay, but bounded *)
  Alcotest.(check bool)
    "elephants within 2x" true
    (wrr.elephant_mean < 2. *. shared.elephant_mean)

let hol_model_is_class_blind () =
  (* the virtual-shared-queue estimate cannot separate the classes: it
     sits below the elephants and far from the FIFO mice *)
  let c = Lognic_apps.Hol_study.default in
  let model = Lognic_apps.Hol_study.model_mean_latency c in
  let shared = Lognic_apps.Hol_study.run_shared_fifo ~duration:1.0 c in
  Alcotest.(check bool)
    "class-blind mean below elephant mean" true
    (model < shared.elephant_mean);
  Alcotest.(check bool)
    "hides the mice penalty" true
    (shared.mice_mean > 2. *. model)

(* New optimizer knobs *)

let optimizer_accel_knob () =
  let g = chain ~rate:(2. *. U.gbps) () in
  let traffic = T.make ~rate:(5. *. U.gbps) ~packet_size:1500. in
  let s =
    Lognic.Optimizer.optimize g ~hw ~traffic
      ~knobs:[ Lognic.Optimizer.Accel (1, [| 1.; 2.; 1.5 |]) ]
      Lognic.Optimizer.Maximize_throughput
  in
  (match s.assignment with
  | [ Lognic.Optimizer.Set_accel (1, a) ] -> check_close "A = 2 wins" 2. a
  | _ -> Alcotest.fail "expected accel assignment");
  check_close "accel scales capacity" (4. *. U.gbps)
    s.report.throughput.Lognic.Throughput.attained

let optimizer_ingress_rate_admission () =
  (* admission control: the highest BW_in meeting a latency bound *)
  let g = chain ~queue:64 () in
  let bound = 20. *. U.usec in
  let s =
    Lognic.Optimizer.optimize g ~hw
      ~traffic:(T.make ~rate:(1. *. U.gbps) ~packet_size:1500.)
      ~knobs:[ Lognic.Optimizer.Ingress_rate (0.1 *. U.gbps, 4. *. U.gbps) ]
      (Lognic.Optimizer.Maximize_throughput_max_latency bound)
  in
  Alcotest.(check bool) "feasible" true s.feasible;
  let latency = s.report.latency.Lognic.Latency.mean in
  Alcotest.(check bool) "meets the bound" true (latency <= bound *. 1.0001);
  (* and it should be pushing near the bound, not sandbagging *)
  Alcotest.(check bool) "not sandbagging" true (latency > 0.6 *. bound)

let properties =
  [
    prop "gamma quantile is monotone in p"
      QCheck.(triple (float_range 0.3 20.) (float_range 0.1 10.)
                (pair (float_range 0.02 0.98) (float_range 0.02 0.98)))
      (fun (shape, scale, (p1, p2)) ->
        let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
        N.Gamma.quantile ~shape ~scale lo <= N.Gamma.quantile ~shape ~scale hi +. 1e-9);
    prop "tail p99 >= mean for any load"
      QCheck.(float_range 0.1 1.3)
      (fun load ->
        let g = chain () in
        let traffic = T.make ~rate:(load *. 4. *. U.gbps) ~packet_size:1500. in
        let q = Lognic.Tail.overall (Lognic.Tail.evaluate g ~hw ~traffic) in
        q.p99 >= q.q_mean -. 1e-12);
  ]

let suite =
  [
    quick "gamma: log gamma" gamma_log_gamma;
    quick "gamma: exponential CDF" gamma_cdf_exponential_case;
    quick "gamma: erlang CDF" gamma_cdf_erlang_case;
    quick "gamma: quantile roundtrip" gamma_quantile_inverts_cdf;
    quick "gamma: moment matching" gamma_of_moments;
    quick "tail: mean agrees with latency model" tail_mean_agrees_with_latency;
    quick "tail: quantile ordering" tail_quantiles_ordered;
    slow "tail: matches simulator percentiles" tail_matches_simulator;
    quick "tail: quantile function" tail_quantile_function;
    quick "tail: multi-server tails lighter" tail_mmcn_below_mm1n;
    quick "tail: multi-path mixture" tail_multipath_mixture;
    slow "bursty: mean rate preserved" bursty_preserves_mean_rate;
    slow "bursty: fatter tails" bursty_fattens_tails;
    quick "bursty: validation" bursty_validation;
    quick "wrr: weights respected" wrr_weights_respected;
    quick "wrr: work conserving" wrr_skips_empty_queues;
    quick "wrr: per-queue capacity" wrr_per_queue_capacity;
    quick "wrr: validation" wrr_validation;
    slow "hol: WRR isolates mice" hol_wrr_isolates_mice;
    slow "hol: model is class-blind" hol_model_is_class_blind;
    quick "optimizer: accel knob" optimizer_accel_knob;
    quick "optimizer: ingress-rate admission" optimizer_ingress_rate_admission;
  ]
  @ properties
