(* Tests for the §5.3 programmable-switch generalization: the RMT
   switch device model and the in-network KV cache case study. *)

open Helpers
module G = Lognic.Graph
module U = Lognic.Units
module Sw = Lognic_devices.Rmt_switch
open Lognic_apps

let forwarding_valid () =
  List.iter
    (fun recirculate ->
      let g = Sw.forwarding_graph ~recirculate ~packet_size:U.mtu () in
      Alcotest.(check bool)
        (Printf.sprintf "valid at recirculation %g" recirculate)
        true
        (Result.is_ok (G.validate g)))
    [ 0.; 0.1; 0.5 ];
  check_raises_invalid "recirculate = 1 rejected" (fun () ->
      Sw.forwarding_graph ~recirculate:1. ~packet_size:U.mtu ())

let forwarding_line_rate_at_mtu () =
  (* MTU forwarding is line-rate bound, not pipeline bound *)
  let g = Sw.forwarding_graph ~packet_size:U.mtu () in
  check_close "line rate" Sw.line_rate (Lognic.Throughput.capacity g ~hw:Sw.hardware)

let forwarding_pps_bound_at_64b () =
  (* 3.2T at 64B would be 6.25 Gpps; the 1.2 Gpps pipeline binds *)
  let g = Sw.forwarding_graph ~packet_size:64. () in
  check_close "pipeline pps bound" (Sw.pipeline_pps *. 64.)
    (Lognic.Throughput.capacity g ~hw:Sw.hardware)

let recirculation_costs_capacity () =
  let cap r =
    Lognic.Throughput.capacity
      (Sw.forwarding_graph ~recirculate:r ~packet_size:64. ())
      ~hw:Sw.hardware
  in
  (* recirculated packets consume extra pipeline slots: capacity falls
     by the 1/(1+r) share *)
  check_within ~pct:1. "20% recirculation costs 1/1.2" (cap 0. /. 1.2) (cap 0.2);
  Alcotest.(check bool) "monotone" true (cap 0.4 < cap 0.2 && cap 0.2 < cap 0.)

let pipeline_latency_is_depth () =
  (* at low load, switch transit time ~ pipeline depth + serialization *)
  let g = Sw.forwarding_graph ~packet_size:U.mtu () in
  let traffic = Lognic.Traffic.make ~rate:(10. *. U.gbps) ~packet_size:U.mtu in
  let r = Lognic.Latency.evaluate g ~hw:Sw.hardware ~traffic in
  check_within ~pct:15. "transit ~ pipeline depth"
    (Sw.pipeline_depth
    +. (2. *. (U.mtu /. Sw.line_rate))
    +. (32. /. Sw.register_bandwidth))
    r.Lognic.Latency.mean

let register_traffic_can_bind () =
  (* huge per-packet register footprints push the bottleneck onto the
     memory medium *)
  let g =
    Sw.forwarding_graph ~register_bytes_per_packet:4096. ~packet_size:64. ()
  in
  let traffic = Lognic.Traffic.make ~rate:Sw.line_rate ~packet_size:64. in
  let r = Lognic.Throughput.evaluate g ~hw:Sw.hardware ~traffic in
  Alcotest.(check bool)
    "memory bound" true
    (r.Lognic.Throughput.bottleneck = Lognic.Throughput.Memory_bound)

(* NetCache *)

let netcache_hyperbolic_law () =
  (* sustainable rate = server_rate / (1 - h) while the server binds *)
  let c = Netcache.default in
  List.iter
    (fun h ->
      check_within ~pct:1.
        (Printf.sprintf "1/(1-h) law at %g" h)
        (1. /. (1. -. h))
        (Netcache.speedup_at ~hit_ratio:h c))
    [ 0.25; 0.5; 0.75; 0.9 ]

let netcache_sweep_shape () =
  let points = Netcache.hit_ratio_sweep ~duration:0.01 Netcache.default in
  let rps = List.map (fun (p : Netcache.point) -> p.model_rps) points in
  Alcotest.(check (list (float 1.))) "throughput monotone in hit ratio"
    (List.sort compare rps) rps;
  let lat = List.map (fun (p : Netcache.point) -> p.model_latency) points in
  Alcotest.(check (list (float 1e-12)))
    "latency falls with hit ratio"
    (List.rev (List.sort compare lat))
    lat;
  (* simulator confirms the model within 15% everywhere *)
  List.iter
    (fun (p : Netcache.point) ->
      check_within ~pct:15.
        (Printf.sprintf "sim agreement at h=%g" p.hit_ratio)
        p.model_rps p.measured_rps)
    points

let netcache_graph_validity () =
  List.iter
    (fun h ->
      Alcotest.(check bool)
        (Printf.sprintf "valid at h=%g" h)
        true
        (Result.is_ok (G.validate (Netcache.graph ~hit_ratio:h Netcache.default))))
    [ 0.; 0.5; 1. ];
  check_raises_invalid "bad hit ratio" (fun () ->
      Netcache.graph ~hit_ratio:1.5 Netcache.default)

let suite =
  [
    quick "switch: forwarding graphs valid" forwarding_valid;
    quick "switch: line rate at MTU" forwarding_line_rate_at_mtu;
    quick "switch: pps bound at 64B" forwarding_pps_bound_at_64b;
    quick "switch: recirculation cost" recirculation_costs_capacity;
    quick "switch: pipeline-depth latency" pipeline_latency_is_depth;
    quick "switch: register traffic binds" register_traffic_can_bind;
    quick "netcache: hyperbolic law" netcache_hyperbolic_law;
    slow "netcache: sweep shape + sim" netcache_sweep_shape;
    quick "netcache: graph validity" netcache_graph_validity;
  ]
