(* Smoke tests for the Lognic_check fuzzing library: the runner's
   outcome plumbing (pass, fail, JSON) and a fixed-seed mini run of
   each property family so a broken generator or property fails the
   ordinary test suite, not just the slower `lognic check` CLI. *)

open Helpers
module C = Lognic_check
module J = Lognic_sim.Telemetry.Json

let runner_reports_passes_and_failures () =
  let pass =
    QCheck.Test.make ~count:20 ~name:"tautology" QCheck.small_nat (fun _ -> true)
  in
  let fail =
    QCheck.Test.make ~count:20 ~name:"contradiction" QCheck.small_nat
      (fun n -> n < 0)
  in
  match C.Runner.run ~seed:7 [ pass; fail ] with
  | [ a; b ] ->
    Alcotest.(check string) "name" "tautology" a.C.Runner.name;
    Alcotest.(check bool) "passed" true a.C.Runner.passed;
    Alcotest.(check bool) "no message" true (a.C.Runner.message = None);
    Alcotest.(check bool) "failed" false b.C.Runner.passed;
    Alcotest.(check bool) "failure carries a message" true
      (b.C.Runner.message <> None);
    Alcotest.(check bool) "all_passed is false" false (C.Runner.all_passed [ a; b ]);
    Alcotest.(check bool) "all_passed on the good half" true
      (C.Runner.all_passed [ a ])
  | _ -> Alcotest.fail "two outcomes expected"

let runner_is_deterministic () =
  (* same seed, same verdict and same counterexample report *)
  let test () =
    QCheck.Test.make ~count:50 ~name:"flaky-looking" QCheck.small_nat
      (fun n -> n <> 17)
  in
  let run () = List.hd (C.Runner.run ~seed:42 [ test () ]) in
  let a = run () and b = run () in
  Alcotest.(check bool) "same verdict" a.C.Runner.passed b.C.Runner.passed;
  Alcotest.(check bool) "same message" true (a.C.Runner.message = b.C.Runner.message)

let outcome_json_shape () =
  let o = { C.Runner.name = "p"; passed = false; message = Some "boom" } in
  let j = C.Runner.outcome_to_json o in
  Alcotest.(check bool) "name" true (J.member "name" j = Some (J.Str "p"));
  Alcotest.(check bool) "passed" true (J.member "passed" j = Some (J.Bool false));
  Alcotest.(check bool) "message" true (J.member "message" j = Some (J.Str "boom"))

let generators_build_valid_scenarios () =
  let st = Random.State.make [| 11 |] in
  for _ = 1 to 25 do
    let s = C.Gen.wild st in
    (match Lognic.Graph.validate s.C.Gen.graph with
    | Ok () -> ()
    | Error es -> Alcotest.fail ("wild graph invalid: " ^ String.concat "; " es));
    let s = C.Gen.low_load_chain st in
    match Lognic.Graph.validate s.C.Gen.graph with
    | Ok () -> ()
    | Error es -> Alcotest.fail ("chain graph invalid: " ^ String.concat "; " es)
  done

(* One tiny fixed-seed iteration of the full suite: every generator and
   property executes end to end. The CLI runs the real counts. *)
let mini_suite_passes () =
  let outcomes = C.Runner.run ~seed:42 (C.Props.suite ~scale:0.01 ()) in
  List.iter
    (fun (o : C.Runner.outcome) ->
      if not o.passed then
        Alcotest.failf "property %s failed: %s" o.name
          (Option.value ~default:"" o.message))
    outcomes;
  Alcotest.(check int) "every property ran" 27 (List.length outcomes)

let suite =
  [
    quick "check: runner separates passes from failures" runner_reports_passes_and_failures;
    quick "check: runner is seed-deterministic" runner_is_deterministic;
    quick "check: outcome JSON shape" outcome_json_shape;
    quick "check: generators build valid graphs" generators_build_valid_scenarios;
    slow "check: mini fuzz suite passes" mini_suite_passes;
  ]
