(* Tests for the fault-injection subsystem: the Run-spec wrappers, the
   empty-plan identity, --jobs invariance of faulted runs, the Faults
   plan algebra, Degraded's modifier application, and the model-vs-sim
   agreement of the degraded evaluator on engine-failure and
   link-degradation scenarios. *)

open Helpers
module S = Lognic_sim
module F = S.Faults
module D = Lognic.Degraded
module G = Lognic.Graph
module U = Lognic.Units
module T = Lognic.Traffic

(* The validation pipeline: in (25G) -> ip (4G, 4 engines, N=64) ->
   out (25G), every edge crossing the interface. *)
let pipeline () =
  let svc t = G.service ~throughput:t () in
  let g = G.empty in
  let g, i = G.add_vertex ~kind:G.Ingress ~label:"in" ~service:(svc (25. *. U.gbps)) g in
  let g, w =
    G.add_vertex ~kind:G.Ip ~label:"ip"
      ~service:
        (G.service ~throughput:(4. *. U.gbps) ~parallelism:4 ~queue_capacity:64 ())
      g
  in
  let g, e = G.add_vertex ~kind:G.Egress ~label:"out" ~service:(svc (25. *. U.gbps)) g in
  let g = G.add_edge ~delta:1. ~alpha:1. ~src:i ~dst:w g in
  let g = G.add_edge ~delta:1. ~alpha:1. ~src:w ~dst:e g in
  g

let hw = Lognic.Params.hardware ~bw_interface:(50. *. U.gbps) ~bw_memory:(60. *. U.gbps)
let traffic = T.make ~rate:(2. *. U.gbps) ~packet_size:1500.
let mix = [ (traffic, 1.) ]
let config = S.Netsim.Config.(default |> with_horizon 0.02)

(* --- smart constructors ------------------------------------------- *)

let constructors_validate () =
  check_raises_invalid "stop <= start" (fun () ->
      F.engine_down ~vertex:"ip" ~engines:1 ~start:0.5 ~stop:0.5);
  check_raises_invalid "negative start" (fun () ->
      F.drop_burst ~probability:0.5 ~start:(-1.) ~stop:1.);
  check_raises_invalid "engines < 1" (fun () ->
      F.engine_down ~vertex:"ip" ~engines:0 ~start:0. ~stop:1.);
  check_raises_invalid "factor 0" (fun () ->
      F.medium_degraded ~medium:"interface" ~factor:0. ~start:0. ~stop:1.);
  check_raises_invalid "factor > 1" (fun () ->
      F.medium_degraded ~medium:"interface" ~factor:1.5 ~start:0. ~stop:1.);
  check_raises_invalid "capacity < 1" (fun () ->
      F.queue_shrunk ~vertex:"ip" ~capacity:0 ~start:0. ~stop:1.);
  check_raises_invalid "probability > 1" (fun () ->
      F.drop_burst ~probability:1.5 ~start:0. ~stop:1.);
  check_raises_invalid "non-finite stop" (fun () ->
      F.engine_down ~vertex:"ip" ~engines:1 ~start:0. ~stop:Float.nan)

(* --- plan algebra -------------------------------------------------- *)

let intervals_partition () =
  let a = F.engine_down ~vertex:"ip" ~engines:1 ~start:0.2 ~stop:0.6 in
  let b = F.medium_degraded ~medium:"interface" ~factor:0.5 ~start:0.4 ~stop:0.8 in
  let ivs = F.intervals ~duration:1. [ a; b ] in
  let shape =
    List.map (fun (lo, hi, evs) -> (lo, hi, List.length evs)) ivs
  in
  Alcotest.(check (list (triple (float 1e-9) (float 1e-9) int)))
    "boundaries and active counts"
    [
      (0., 0.2, 0);
      (0.2, 0.4, 1);
      (0.4, 0.6, 2);
      (0.6, 0.8, 1);
      (0.8, 1., 0);
    ]
    shape;
  (* empty plan: one healthy interval *)
  Alcotest.(check (list (triple (float 1e-9) (float 1e-9) int)))
    "empty plan" [ (0., 1., 0) ]
    (List.map (fun (lo, hi, evs) -> (lo, hi, List.length evs))
       (F.intervals ~duration:1. F.empty));
  (* events past the horizon are clipped away *)
  let late = F.drop_burst ~probability:0.5 ~start:2. ~stop:3. in
  Alcotest.(check int) "late event clipped" 1
    (List.length (F.intervals ~duration:1. [ late ]));
  check_raises_invalid "non-positive duration" (fun () ->
      F.intervals ~duration:0. [ a ])

let modifiers_compose () =
  let plan =
    [
      F.engine_down ~vertex:"ip" ~engines:1 ~start:0. ~stop:1.;
      F.engine_down ~vertex:"ip" ~engines:2 ~start:0. ~stop:1.;
      F.medium_degraded ~medium:"interface" ~factor:0.5 ~start:0. ~stop:1.;
      F.medium_degraded ~medium:"interface" ~factor:0.5 ~start:0. ~stop:1.;
      F.drop_burst ~probability:0.5 ~start:0. ~stop:1.;
      F.drop_burst ~probability:0.5 ~start:0. ~stop:1.;
    ]
  in
  match F.modifiers ~duration:1. plan with
  | [ (_, _, m) ] ->
    (* duplicate targets stay as separate entries and fold at apply
       time (engines sum, factors multiply) — assert the fold *)
    Alcotest.(check int) "engines sum" 3
      (List.fold_left
         (fun acc (v, n) -> if v = "ip" then acc + n else acc)
         0 m.D.engines_down);
    check_close "factors multiply" 0.25
      (List.fold_left
         (fun acc (l, f) -> if l = "interface" then acc *. f else acc)
         1. m.D.media_factors);
    check_close "burst survival multiplies" 0.75 m.D.ingress_drop;
    Alcotest.(check bool) "degraded" true (D.is_degraded m)
  | _ -> Alcotest.fail "expected a single interval"

(* --- Degraded.apply_modifier -------------------------------------- *)

let apply_modifier_scales () =
  let g = pipeline () in
  let nominal = Lognic.Throughput.capacity g ~hw in
  check_close "nominal capacity is the ip" (4. *. U.gbps) nominal;
  (* two of four engines down: the binding vertex halves *)
  let m = { D.no_modifier with D.engines_down = [ ("ip", 2) ] } in
  let g', hw', failed = D.apply_modifier g ~hw m in
  Alcotest.(check bool) "no full failure" true (failed = None);
  check_close "capacity halves" (2. *. U.gbps)
    (Lognic.Throughput.capacity g' ~hw:hw');
  (match G.find_vertex g' ~label:"ip" with
  | Some v -> Alcotest.(check int) "parallelism shrinks" 2 v.G.service.G.parallelism
  | None -> Alcotest.fail "ip vanished");
  (* all engines down: reported as fully failed, graph untouched *)
  let m = { D.no_modifier with D.engines_down = [ ("ip", 4) ] } in
  let _, _, failed = D.apply_modifier g ~hw m in
  (match G.find_vertex g ~label:"ip" with
  | Some v ->
    Alcotest.(check bool) "full failure reported" true (failed = Some v.G.id)
  | None -> Alcotest.fail "ip vanished");
  (* interface factor scales the hardware *)
  let m = { D.no_modifier with D.media_factors = [ ("interface", 0.5) ] } in
  let _, hw', _ = D.apply_modifier g ~hw m in
  check_close "interface halves" (25. *. U.gbps) hw'.Lognic.Params.bw_interface;
  check_close "memory untouched" (60. *. U.gbps) hw'.Lognic.Params.bw_memory;
  (* queue caps min-combine with the vertex's own N *)
  let m = { D.no_modifier with D.queue_caps = [ ("ip", 8) ] } in
  let g', _, _ = D.apply_modifier g ~hw m in
  (match G.find_vertex g' ~label:"ip" with
  | Some v -> Alcotest.(check int) "queue capped" 8 v.G.service.G.queue_capacity
  | None -> Alcotest.fail "ip vanished");
  (* unknown labels are ignored *)
  let m = { D.no_modifier with D.engines_down = [ ("nope", 1) ] } in
  let g', hw', failed = D.apply_modifier g ~hw m in
  Alcotest.(check bool) "unknown label is a no-op" true
    (failed = None
    && Lognic.Throughput.capacity g' ~hw:hw' = nominal)

let evaluate_nominal_identity () =
  let g = pipeline () in
  let r =
    D.evaluate g ~hw ~traffic ~intervals:[ (0., 1., D.no_modifier) ]
  in
  check_close "degraded = nominal throughput" r.D.nominal_throughput
    r.D.degraded_throughput;
  check_close "availability 1" 1. r.D.availability;
  Alcotest.(check bool) "no worst interval" true (r.D.worst = None)

(* --- Run-spec wrappers -------------------------------------------- *)

let wrappers_equivalent () =
  let g = pipeline () in
  let legacy = S.Netsim.run ~config g ~hw ~mix in
  let spec = S.Netsim.Run.make ~config g ~hw ~mix in
  let via_spec = S.Netsim.execute spec in
  Alcotest.(check string) "run = execute(Run.make), byte-identical JSON"
    (S.Telemetry.Json.to_string (S.Netsim.measurement_to_json legacy))
    (S.Telemetry.Json.to_string (S.Netsim.measurement_to_json via_spec));
  let single = S.Netsim.run_single ~config g ~hw ~traffic in
  let via_single = S.Netsim.execute (S.Netsim.Run.single ~config g ~hw ~traffic) in
  Alcotest.(check bool) "run_single = execute(Run.single)" true
    (single = via_single);
  let legacy_rep = S.Netsim.run_replicated ~config ~runs:3 g ~hw ~mix in
  let spec_rep = S.Netsim.execute_replicated ~runs:3 spec in
  Alcotest.(check bool) "run_replicated = execute_replicated" true
    (legacy_rep = spec_rep)

let with_setters_update () =
  let g = pipeline () in
  let spec = S.Netsim.Run.make ~config g ~hw ~mix in
  let spec = S.Netsim.Run.with_seed spec 42 in
  let spec = S.Netsim.Run.with_duration spec 0.01 in
  Alcotest.(check int) "seed set" 42 spec.S.Netsim.Run.config.S.Netsim.seed;
  check_close "duration set" 0.01 spec.S.Netsim.Run.config.S.Netsim.duration;
  let plan = [ F.drop_burst ~probability:0.5 ~start:0. ~stop:0.01 ] in
  let spec = S.Netsim.Run.with_faults spec plan in
  Alcotest.(check bool) "faults set" true (spec.S.Netsim.Run.faults == plan)

(* --- empty-plan / no-op-plan identity ------------------------------ *)

let empty_plan_identity () =
  let g = pipeline () in
  let base = S.Netsim.run ~config g ~hw ~mix in
  Alcotest.(check bool) "no fault intervals" true (base.S.Netsim.fault_intervals = []);
  Alcotest.(check bool) "no resilience" true (base.S.Netsim.resilience = None);
  (* a plan whose only fault is a zero-probability burst realizes the
     whole fault machinery (own rng stream, per-packet interval
     accounting) yet must not perturb a single measured quantity *)
  let plan = [ F.drop_burst ~probability:0. ~start:0. ~stop:config.S.Netsim.duration ] in
  let faulted =
    S.Netsim.execute (S.Netsim.Run.make ~config ~faults:plan g ~hw ~mix)
  in
  Alcotest.(check bool) "summary unperturbed" true
    (base.S.Netsim.summary = faulted.S.Netsim.summary);
  Alcotest.(check bool) "vertex stats unperturbed" true
    (base.S.Netsim.vertex_stats = faulted.S.Netsim.vertex_stats);
  Alcotest.(check bool) "medium stats unperturbed" true
    (base.S.Netsim.medium_stats = faulted.S.Netsim.medium_stats);
  Alcotest.(check bool) "accounting present under the no-op plan" true
    (faulted.S.Netsim.fault_intervals <> [])

let unknown_targets_rejected () =
  let g = pipeline () in
  let run plan =
    ignore (S.Netsim.execute (S.Netsim.Run.make ~config ~faults:plan g ~hw ~mix))
  in
  check_raises_invalid "unknown vertex" (fun () ->
      run [ F.engine_down ~vertex:"nope" ~engines:1 ~start:0. ~stop:0.01 ]);
  check_raises_invalid "unknown medium" (fun () ->
      run [ F.medium_degraded ~medium:"link-a-b" ~factor:0.5 ~start:0. ~stop:0.01 ])

(* --- determinism of faulted runs at any job count ------------------ *)

let faulted_jobs_invariant () =
  let g = pipeline () in
  let plan =
    [
      F.engine_down ~vertex:"ip" ~engines:3 ~start:0.004 ~stop:0.01;
      F.medium_degraded ~medium:"interface" ~factor:0.5 ~start:0.008 ~stop:0.014;
      F.drop_burst ~probability:0.3 ~start:0.002 ~stop:0.006;
      F.queue_shrunk ~vertex:"ip" ~capacity:4 ~start:0.012 ~stop:0.018;
    ]
  in
  let spec = S.Netsim.Run.make ~config ~faults:plan g ~hw ~mix in
  let sequential = S.Netsim.execute_replicated ~runs:4 spec in
  List.iter
    (fun jobs ->
      let parallel = S.Parallel.execute_replicated ~jobs ~runs:4 spec in
      Alcotest.(check bool)
        (Printf.sprintf "bit-identical at jobs:%d" jobs)
        true
        (sequential = parallel))
    [ 1; 2; 4 ];
  Alcotest.(check bool) "across-run resilience present" true
    (sequential.S.Netsim.resilience <> None)

(* --- degraded model vs simulation ---------------------------------- *)

let long_config = { config with S.Netsim.duration = 0.05; warmup = 0.005 }

(* Engine failure: 3 of 4 engines down squeezes the ip to 1 Gbps under
   a 2 Gbps offered load — the model says carried = 1 Gbps during the
   outage, 2 Gbps either side; the simulator should agree per interval
   (generous tolerances: intervals are transient, the model is
   steady-state). *)
let engine_failure_agreement () =
  let g = pipeline () in
  let plan = [ F.engine_down ~vertex:"ip" ~engines:3 ~start:0.015 ~stop:0.035 ] in
  let r = Lognic_sim.Resilience.run ~config:long_config g ~hw ~traffic ~plan in
  Alcotest.(check int) "three intervals" 3 (List.length r.S.Resilience.rows);
  List.iter
    (fun (row : S.Resilience.row) ->
      let pct = if row.r_degraded then 20. else 12. in
      check_within ~pct
        (Printf.sprintf "throughput agrees on [%g, %g)" row.r_start row.r_stop)
        row.model_throughput row.sim_throughput)
    r.S.Resilience.rows;
  (* the faulted interval carries half or less of the healthy rate *)
  (match List.find_opt (fun (row : S.Resilience.row) -> row.r_degraded) r.S.Resilience.rows with
  | Some row ->
    Alcotest.(check bool) "degradation visible in the sim" true
      (row.sim_throughput < 0.75 *. traffic.T.rate);
    Alcotest.(check bool) "SLO violated during the outage" true (not row.slo_ok)
  | None -> Alcotest.fail "no degraded interval");
  check_within ~pct:15. "composite degraded throughput agrees"
    r.S.Resilience.model.D.degraded_throughput r.S.Resilience.sim_degraded_throughput

(* Link degradation: the interface at 4% of its bandwidth becomes the
   1 Gbps bottleneck (50G * 0.04 / Sum-alpha=2). The post-fault interval
   gets a looser tolerance: transfers admitted during the fault were
   committed at the degraded rate, so the restored medium rejects
   arrivals for the few milliseconds it takes those commitments to
   clear — a drain transient the steady-state model doesn't see. *)
let link_degradation_agreement () =
  let g = pipeline () in
  let config = { config with S.Netsim.duration = 0.1; warmup = 0.005 } in
  let plan =
    [ F.medium_degraded ~medium:"interface" ~factor:0.04 ~start:0.02 ~stop:0.04 ]
  in
  let r = Lognic_sim.Resilience.run ~config g ~hw ~traffic ~plan in
  List.iter
    (fun (row : S.Resilience.row) ->
      let pct =
        if row.r_degraded then 20. else if row.r_start > 0.02 then 25. else 12.
      in
      check_within ~pct
        (Printf.sprintf "throughput agrees on [%g, %g)" row.r_start row.r_stop)
        row.model_throughput row.sim_throughput)
    r.S.Resilience.rows;
  (match List.find_opt (fun (row : S.Resilience.row) -> row.r_degraded) r.S.Resilience.rows with
  | Some row ->
    check_within ~pct:20. "degraded interval pinned at the squeezed link"
      (1. *. U.gbps) row.sim_throughput
  | None -> Alcotest.fail "no degraded interval");
  (* model availability: 20 ms of 100 ms violates *)
  check_close ~tol:1e-6 "model availability" 0.8 r.S.Resilience.model.D.availability

let empty_plan_resilience_degenerates () =
  let g = pipeline () in
  let r = Lognic_sim.Resilience.run ~config g ~hw ~traffic ~plan:F.empty in
  Alcotest.(check int) "single healthy row" 1 (List.length r.S.Resilience.rows);
  let row = List.hd r.S.Resilience.rows in
  Alcotest.(check bool) "healthy" true (not row.S.Resilience.r_degraded);
  check_close "sim side is the whole-run summary"
    r.S.Resilience.measurement.S.Netsim.summary.S.Telemetry.throughput
    row.S.Resilience.sim_throughput;
  Alcotest.(check bool) "no recovery stats" true (r.S.Resilience.resilience = None)

let recovery_observed () =
  let g = pipeline () in
  (* fault clears at 0.02 with 30 ms of healthy runway: recovery must be
     observed, and promptly (light load, small queue backlog) *)
  let plan = [ F.engine_down ~vertex:"ip" ~engines:3 ~start:0.01 ~stop:0.02 ] in
  let m =
    S.Netsim.execute
      (S.Netsim.Run.single ~config:long_config ~faults:plan g ~hw ~traffic)
  in
  match m.S.Netsim.resilience with
  | Some { S.Netsim.recovery_time = Some rt; worst_start; _ } ->
    Alcotest.(check bool) "recovers within 10 ms" true (rt >= 0. && rt < 0.01);
    Alcotest.(check bool) "worst interval lies inside the fault window" true
      (worst_start >= 0.01 && worst_start < 0.02)
  | Some { S.Netsim.recovery_time = None; _ } ->
    Alcotest.fail "recovery not observed"
  | None -> Alcotest.fail "no resilience summary"

let faults_json_versioned () =
  let g = pipeline () in
  let plan = [ F.engine_down ~vertex:"ip" ~engines:3 ~start:0.004 ~stop:0.01 ] in
  let r = Lognic_sim.Resilience.run ~config g ~hw ~traffic ~plan in
  let s = Lognic_sim.Resilience.to_string r in
  Alcotest.(check bool) "schema stamped" true
    (contains_substring s "\"schema\":\"faults\"");
  Alcotest.(check bool) "schema_version stamped" true
    (contains_substring s "\"schema_version\":1");
  let text = Lognic_sim.Resilience.to_text r in
  Alcotest.(check bool) "text mentions the fault" true
    (contains_substring text "engine_down:ip")

let suite =
  [
    quick "constructors: reject bad windows and parameters" constructors_validate;
    quick "intervals: constant-fault partition" intervals_partition;
    quick "modifiers: overlapping faults compose" modifiers_compose;
    quick "degraded: apply_modifier scales D'/B'/N'" apply_modifier_scales;
    quick "degraded: nominal intervals change nothing" evaluate_nominal_identity;
    quick "run-spec: wrappers byte-identical" wrappers_equivalent;
    quick "run-spec: with_* setters" with_setters_update;
    quick "faults: no-op plan never perturbs measurements" empty_plan_identity;
    quick "faults: unknown targets rejected eagerly" unknown_targets_rejected;
    slow "faults: replications bit-identical at any --jobs" faulted_jobs_invariant;
    slow "resilience: engine failure, model vs sim" engine_failure_agreement;
    slow "resilience: link degradation, model vs sim" link_degradation_agreement;
    quick "resilience: empty plan degenerates" empty_plan_resilience_degenerates;
    slow "resilience: recovery time observed" recovery_observed;
    quick "resilience: versioned JSON and text" faults_json_versioned;
  ]
