(* Writes the golden measurement-JSON fixtures for every scenario in
   [Lognic_check.Golden] into the directory given as argv(1).  Run once
   against a known-good engine and commit the output; the test suite
   then asserts byte-equality on every run. *)
let write ?(ext = ".json") dir name contents =
  let path = Filename.concat dir (name ^ ext) in
  let oc = open_out_bin path in
  output_string oc contents;
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n%!" path

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "." in
  List.iter
    (fun (name, run) ->
      write dir name (Lognic_check.Golden.measurement_string run))
    (Lognic_check.Golden.scenarios ());
  List.iter
    (fun (name, render) -> write dir name (render ()))
    (Lognic_check.Golden.contention_scenarios ());
  List.iter
    (fun (name, render) -> write dir name (render ()))
    (Lognic_check.Golden.tenant_scenarios ());
  List.iter
    (fun (name, render) -> write dir name (render ()))
    (Lognic_check.Golden.flowcache_scenarios ());
  List.iter
    (fun (name, render) ->
      write ~ext:".ndjson" dir name (String.trim (render ())))
    (Lognic_check.Golden.metrics_scenarios ())
