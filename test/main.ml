let () =
  Alcotest.run "lognic"
    [
      ("numerics", Test_numerics.suite);
      ("queueing", Test_queueing.suite);
      ("graph", Test_graph.suite);
      ("model", Test_model.suite);
      ("extensions-optimizer", Test_extensions.suite);
      ("sim", Test_sim.suite);
      ("invariants", Test_invariants.suite);
      ("check", Test_check.suite);
      ("golden", Test_golden.suite);
      ("tenants", Test_tenants.suite);
      ("flowcache", Test_flowcache.suite);
      ("observability", Test_observability.suite);
      ("metrics", Test_metrics.suite);
      ("parallel", Test_parallel.suite);
      ("faults", Test_faults.suite);
      ("devices", Test_devices.suite);
      ("apps", Test_apps.suite);
      ("dsl", Test_dsl.suite);
      ("tail-extensions", Test_tail.suite);
      ("switch", Test_switch.suite);
      ("analysis", Test_analysis.suite);
    ]
