(* Tests for the live metrics layer: SLO rule grammar, histogram
   bucketing (unrolled fast path and oversized-bounds fallback),
   delta/rate arithmetic, alert hysteresis, the zero-perturbation
   guarantee under Netsim, the streaming serializer's byte-equality
   with the JSON-tree exporter, OpenMetrics output, the self-profiler,
   and the central Schema registry. *)

open Helpers
module S = Lognic_sim
module M = Lognic_sim.Metrics
module J = Lognic_sim.Telemetry.Json
module G = Lognic.Graph
module U = Lognic.Units
module T = Lognic.Traffic

(* ------------------------------------------------------------------ *)
(* SLO rule grammar.                                                  *)

let slo_parse_roundtrip () =
  let roundtrips s =
    let r = M.Slo.parse_exn s in
    Alcotest.(check string) (s ^ " round-trips") s (M.Slo.to_string r)
  in
  List.iter roundtrips
    [
      "utilization>0.95";
      "cores.utilization>0.95x3";
      "queue_depth<2";
      "run.dropped>0";
      "backlog_bytes^4";
      "memory.latency_p99>0.001x2";
    ];
  let r = M.Slo.parse_exn "utilization>0.9" in
  Alcotest.(check string) "entity defaults to *" "*" r.M.Slo.r_entity;
  Alcotest.(check int) "for defaults to 1" 1 r.M.Slo.r_for;
  Alcotest.(check bool) "wildcard matches" true
    (M.Slo.matches r ~entity:"anything" ~metric:"utilization");
  Alcotest.(check bool) "metric must match" false
    (M.Slo.matches r ~entity:"anything" ~metric:"other");
  let pinned = M.Slo.parse_exn "cores.utilization>0.9" in
  Alcotest.(check bool) "pinned entity matches" true
    (M.Slo.matches pinned ~entity:"cores" ~metric:"utilization");
  Alcotest.(check bool) "pinned entity rejects others" false
    (M.Slo.matches pinned ~entity:"memory" ~metric:"utilization");
  List.iter
    (fun bad ->
      match M.Slo.parse bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S should not parse" bad)
    [ ""; "utilization"; ">0.9"; "m>abc"; "m^0"; "m^-1"; "m>1x0" ]

(* ------------------------------------------------------------------ *)
(* Histograms.                                                        *)

(* (count, sum, p50, p99) of one histogram after a tick *)
let hist_sample t entity name =
  let snap = M.tick t ~now:1e-3 in
  let e = List.find (fun e -> e.M.e_name = entity) snap.M.s_entities in
  match List.assoc name e.M.e_samples with
  | M.Hist_s { count; sum; p50; p99 } -> (count, sum, p50, p99)
  | _ -> Alcotest.failf "%s.%s is not a histogram" entity name

let histogram_buckets_and_quantiles () =
  let t = M.create M.default_config in
  let h = M.histogram t ~entity:"e" ~name:"lat" ~bounds:[| 1.; 2.; 4. |] () in
  List.iter (M.observe h) [ 0.5; 1.5; 3.; 10. ];
  let count, sum, p50, p99 = hist_sample t "e" "lat" in
  Alcotest.(check int) "count" 4 count;
  check_close "sum" 15. sum;
  (* target ceil(0.5*4)=2 -> second bucket's upper bound *)
  check_close "p50 bucket bound" 2. p50;
  (* the +inf bucket reports the largest finite bound *)
  check_close "p99 bucket bound" 4. p99

(* Exact-boundary values land in the bucket they bound (search is a
   lower bound over upper bounds), on both the 32-entry unrolled path
   and the recursive fallback for oversized custom bound sets. *)
let histogram_paths_agree () =
  let expected_bucket bounds v =
    let n = Array.length bounds in
    let rec go i = if i >= n || v <= bounds.(i) then i else go (i + 1) in
    go 0
  in
  let check_bounds bounds values =
    let n = Array.length bounds in
    List.iter
      (fun v ->
        let t = M.create M.default_config in
        let h = M.histogram t ~entity:"e" ~name:"m" ~bounds () in
        M.observe h v;
        let _, _, p50, _ = hist_sample t "e" "m" in
        let i = expected_bucket bounds v in
        let want = if i >= n then bounds.(n - 1) else bounds.(i) in
        check_close
          (Printf.sprintf "n=%d v=%g lands at bound %g" n v want)
          want p50)
      values
  in
  (* n+1 <= 32: the unrolled five-compare search *)
  check_bounds
    (Array.init 31 (fun i -> float_of_int (i + 1)))
    [ 0.5; 1.; 1.0000001; 17.3; 30.9; 31.; 1000. ];
  (* n+1 > 32: the recursive lower-bound fallback *)
  check_bounds
    (Array.init 40 (fun i -> float_of_int (i + 1)))
    [ 0.5; 1.; 17.3; 39.5; 40.; 1000. ]

let observe_span_matches_observe () =
  let t = M.create M.default_config in
  let a = M.histogram t ~entity:"a" ~name:"m" () in
  let b = M.histogram t ~entity:"b" ~name:"m" () in
  let fs = Array.make 4 0. in
  List.iter
    (fun (from_v, to_v) ->
      M.observe a (to_v -. from_v);
      fs.(1) <- from_v;
      fs.(3) <- to_v;
      M.observe_span b fs ~from_slot:1 ~to_slot:3)
    [ (0., 1e-6); (1., 1.0005); (2., 2.7); (0., 0.) ];
  let snap = M.tick t ~now:1e-3 in
  let sample entity =
    let e = List.find (fun e -> e.M.e_name = entity) snap.M.s_entities in
    List.assoc "m" e.M.e_samples
  in
  Alcotest.(check bool)
    "observe_span records the identical sample" true
    (sample "a" = sample "b")

(* ------------------------------------------------------------------ *)
(* Delta / rate arithmetic across ticks.                              *)

let scalar_samples () =
  let t = M.create M.default_config in
  let c = ref 0. and g = ref 0. and busy = ref 0. in
  M.register t ~entity:"e" ~name:"done" M.Counter (fun () -> !c);
  M.register t ~entity:"e" ~name:"depth" M.Gauge (fun () -> !g);
  M.register t ~entity:"e" ~name:"utilization" M.Rate (fun () -> !busy);
  let sample snap name =
    let e = List.hd snap.M.s_entities in
    List.assoc name e.M.e_samples
  in
  c := 5.;
  g := 3.;
  busy := 0.5;
  let s1 = M.tick t ~now:1.0 in
  (match sample s1 "done" with
  | M.Counter_s { total; delta } ->
    check_close "counter total" 5. total;
    check_close "counter delta" 5. delta
  | _ -> Alcotest.fail "counter kind");
  (match sample s1 "depth" with
  | M.Gauge_s { value } -> check_close "gauge value" 3. value
  | _ -> Alcotest.fail "gauge kind");
  (match sample s1 "utilization" with
  | M.Rate_s { value; total } ->
    (* 0.5 busy-seconds over a 1 s interval *)
    check_close "rate value" 0.5 value;
    check_close "rate total" 0.5 total
  | _ -> Alcotest.fail "rate kind");
  c := 12.;
  g := 1.;
  busy := 1.5;
  let s2 = M.tick t ~now:3.0 in
  (match sample s2 "done" with
  | M.Counter_s { total; delta } ->
    check_close "counter total'" 12. total;
    check_close "counter delta'" 7. delta
  | _ -> Alcotest.fail "counter kind");
  (match sample s2 "utilization" with
  | M.Rate_s { value; _ } ->
    (* 1.0 more busy-seconds over a 2 s interval *)
    check_close "rate value'" 0.5 value
  | _ -> Alcotest.fail "rate kind");
  check_close "interval is since previous tick" 2. s2.M.s_interval;
  Alcotest.(check int) "seq increments" 2 s2.M.s_seq;
  Alcotest.(check int) "snapshots counts ticks" 2 (M.snapshots t)

(* ------------------------------------------------------------------ *)
(* Alert hysteresis.                                                  *)

let alert_events snap = snap.M.s_alerts

let hysteresis_fire_and_resolve () =
  let t =
    M.create
      { M.default_config with slo = [ M.Slo.parse_exn "e.depth>10x2" ] }
  in
  let g = ref 0. in
  M.register t ~entity:"e" ~name:"depth" M.Gauge (fun () -> !g);
  let step now v =
    g := v;
    alert_events (M.tick t ~now)
  in
  Alcotest.(check int) "1st breach: armed, not fired" 0 (List.length (step 1. 20.));
  (match step 2. 20. with
  | [ ev ] ->
    Alcotest.(check bool) "fires on 2nd consecutive breach" true ev.M.ev_firing;
    Alcotest.(check string) "names the entity" "e" ev.M.ev_entity;
    Alcotest.(check string) "carries the rule" "e.depth>10x2" ev.M.ev_rule;
    check_close "carries the value" 20. ev.M.ev_value
  | evs -> Alcotest.failf "expected 1 firing event, got %d" (List.length evs));
  Alcotest.(check int) "steady breach: no re-fire" 0 (List.length (step 3. 25.));
  Alcotest.(check int) "1st clean interval: still active" 0
    (List.length (step 4. 5.));
  (match step 5. 5. with
  | [ ev ] ->
    Alcotest.(check bool) "resolves after 2 clean intervals" false ev.M.ev_firing
  | evs -> Alcotest.failf "expected 1 resolve event, got %d" (List.length evs));
  match M.alerts t with
  | [ a ] ->
    Alcotest.(check bool) "inactive after resolve" false a.M.a_active;
    check_close "first_fired at the firing tick" 2. a.M.a_first_fired;
    check_close "last_fired at the last breach" 3. a.M.a_last_fired;
    Alcotest.(check int) "breached intervals counted" 3 a.M.a_breaches;
    check_close "worst breaching value" 25. a.M.a_worst
  | l -> Alcotest.failf "expected 1 alert state, got %d" (List.length l)

let rising_rule_fires () =
  let t =
    M.create { M.default_config with slo = [ M.Slo.parse_exn "e.depth^3" ] }
  in
  let g = ref 0. in
  M.register t ~entity:"e" ~name:"depth" M.Gauge (fun () -> !g);
  let step now v =
    g := v;
    alert_events (M.tick t ~now)
  in
  Alcotest.(check int) "seed value" 0 (List.length (step 1. 1.));
  Alcotest.(check int) "rising x1" 0 (List.length (step 2. 2.));
  Alcotest.(check int) "rising x2" 0 (List.length (step 3. 3.));
  (match step 4. 4. with
  | [ ev ] -> Alcotest.(check bool) "fires on 3rd rise" true ev.M.ev_firing
  | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs));
  Alcotest.(check int) "flat value does not re-arm" 0 (List.length (step 5. 4.))

(* Histogram ticks synthesize NAME_p50 / NAME_p99 for rules to target. *)
let histogram_slo_target () =
  let t =
    M.create { M.default_config with slo = [ M.Slo.parse_exn "e.lat_p99>3" ] }
  in
  let h = M.histogram t ~entity:"e" ~name:"lat" ~bounds:[| 1.; 2.; 4. |] () in
  List.iter (M.observe h) [ 0.5; 0.5; 0.5; 10. ];
  match alert_events (M.tick t ~now:1.) with
  | [ ev ] ->
    Alcotest.(check string) "p99 rule fired" "e.lat_p99>3" ev.M.ev_rule;
    check_close "at the bucket bound" 4. ev.M.ev_value
  | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs)

(* ------------------------------------------------------------------ *)
(* Netsim integration: zero perturbation, snapshot cadence.           *)

let pipeline () =
  let svc t = G.service ~throughput:t () in
  let g = G.empty in
  let g, i =
    G.add_vertex ~kind:G.Ingress ~label:"in" ~service:(svc (25. *. U.gbps)) g
  in
  let g, w =
    G.add_vertex ~kind:G.Ip ~label:"ip"
      ~service:(G.service ~throughput:(4. *. U.gbps) ~queue_capacity:16 ())
      g
  in
  let g, e =
    G.add_vertex ~kind:G.Egress ~label:"out" ~service:(svc (25. *. U.gbps)) g
  in
  let g = G.add_edge ~delta:1. ~alpha:1. ~src:i ~dst:w g in
  G.add_edge ~delta:1. ~alpha:1. ~src:w ~dst:e g

let hw =
  Lognic.Params.hardware ~bw_interface:(50. *. U.gbps)
    ~bw_memory:(60. *. U.gbps)

let traffic = T.make ~rate:(3. *. U.gbps) ~packet_size:1500.

let base_config = S.Netsim.Config.(default |> with_horizon 5e-3)

let measurement_json config =
  J.to_string
    (S.Netsim.measurement_to_json
       (S.Netsim.run_single ~config (pipeline ()) ~hw ~traffic))

let metrics_bit_identical () =
  let snaps = ref 0 in
  let metrics =
    {
      M.default_config with
      interval = 2e-4;
      slo = [ M.Slo.parse_exn "*.utilization>0.5" ];
      on_snapshot = Some (fun _ -> incr snaps);
    }
  in
  let bare = measurement_json base_config in
  let streamed =
    measurement_json (S.Netsim.Config.with_metrics metrics base_config)
  in
  Alcotest.(check string)
    "measurement JSON identical with metrics on/off" bare streamed;
  (* 5 ms horizon / 200 µs interval, plus the final flush tick *)
  Alcotest.(check bool)
    (Printf.sprintf "snapshot cadence (%d snapshots)" !snaps)
    true
    (!snaps >= 25 && !snaps <= 27)

(* Metrics compose with the parallel driver: replication stats stay
   bit-identical at any jobs count with a registry attached. *)
let metrics_jobs_invariant () =
  let config =
    S.Netsim.Config.with_metrics
      { M.default_config with interval = 2e-4 }
      base_config
  in
  let run jobs =
    S.Parallel.run_replicated ~jobs ~config ~runs:3 (pipeline ()) ~hw
      ~mix:[ (traffic, 1.) ]
  in
  let a = run 1 and b = run 4 in
  Alcotest.(check bool)
    "replicated stats bit-identical at any jobs count" true
    (a.S.Netsim.throughput_mean = b.S.Netsim.throughput_mean
    && a.S.Netsim.latency_mean = b.S.Netsim.latency_mean
    && a.S.Netsim.loss_mean = b.S.Netsim.loss_mean)

(* ------------------------------------------------------------------ *)
(* Exports.                                                           *)

(* The streaming writer must emit the exact bytes of the tree path —
   on real snapshots from a run and on a synthetic one that exercises
   string escaping and non-finite numbers. *)
let streaming_serializer_byte_identical () =
  let checked = ref 0 in
  let check_snap snap =
    incr checked;
    Alcotest.(check string)
      "snapshot_to_string = to_string (snapshot_to_json)"
      (J.to_string (M.snapshot_to_json snap))
      (M.snapshot_to_string snap)
  in
  let metrics =
    {
      M.default_config with
      interval = 2e-4;
      slo = [ M.Slo.parse_exn "*.utilization>0.5" ];
      on_snapshot = Some check_snap;
    }
  in
  ignore
    (S.Netsim.run_single
       ~config:(S.Netsim.Config.with_metrics metrics base_config)
       (pipeline ()) ~hw ~traffic);
  Alcotest.(check bool) "checked real snapshots" true (!checked > 10);
  check_snap
    {
      M.s_seq = 42;
      s_time = 1.25e-3;
      s_interval = 2.5e-4;
      s_entities =
        [
          {
            M.e_name = "we\"ird\n\t entity \x01";
            e_samples =
              [
                ("c", M.Counter_s { total = 1e16; delta = -0. });
                ("g", M.Gauge_s { value = infinity });
                ("r", M.Rate_s { value = Float.nan; total = 0.1 });
                ( "h",
                  M.Hist_s
                    { count = 0; sum = 0.; p50 = 1e-7; p99 = neg_infinity } );
              ];
          };
          { M.e_name = ""; e_samples = [] };
        ];
      s_alerts =
        [
          {
            M.ev_rule = "a.b>1";
            ev_entity = "\\back\\slash";
            ev_firing = false;
            ev_value = 3.14159;
          };
        ];
    }

let openmetrics_export () =
  let t =
    M.create { M.default_config with slo = [ M.Slo.parse_exn "e.c>0" ] }
  in
  let c = ref 2. in
  M.register t ~entity:"e" ~name:"c" M.Counter (fun () -> !c);
  M.register t ~entity:"e" ~name:"depth" M.Gauge (fun () -> 7.);
  let h = M.histogram t ~entity:"e" ~name:"lat" ~bounds:[| 1.; 2. |] () in
  M.observe h 1.5;
  ignore (M.tick t ~now:1e-3);
  let om = M.to_openmetrics t in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "exposition contains %S" needle)
        true
        (contains_substring om needle))
    [ "lognic_c"; "lognic_depth"; "lognic_lat"; "entity=\"e\""; "# TYPE" ];
  let n = String.length om in
  Alcotest.(check bool) "terminated by # EOF" true
    (n >= 6 && String.sub om (n - 6) 6 = "# EOF\n")

let alerts_and_profile_json () =
  let t =
    M.create
      {
        M.default_config with
        profile = true;
        slo = [ M.Slo.parse_exn "e.c>0" ];
      }
  in
  let c = ref 1. in
  M.register t ~entity:"e" ~name:"c" M.Counter (fun () -> !c);
  ignore (M.tick t ~now:1e-3);
  c := 2.;
  ignore (M.tick t ~now:2e-3);
  (match M.profiler t with
  | None -> Alcotest.fail "profiler absent despite config.profile"
  | Some p ->
    Alcotest.(check int) "one profile row per tick" 2
      (List.length (S.Profile.rows p)));
  (match M.profile_to_json t with
  | None -> Alcotest.fail "profile_to_json absent"
  | Some json ->
    Alcotest.(check bool) "profile schema stamped" true
      (J.member "schema" json = Some (J.Str "profile")));
  let alerts = M.alerts_to_json t in
  Alcotest.(check bool) "alerts schema stamped" true
    (J.member "schema" alerts = Some (J.Str "alerts"));
  match J.of_string (J.to_string alerts) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "alerts JSON does not parse: %s" e

(* ------------------------------------------------------------------ *)
(* The central Schema registry (every exporter stamps through it).    *)

let schema_registry () =
  Alcotest.(check bool) "registry is non-empty" true (S.Schema.table <> []);
  List.iter
    (fun (kind, v) ->
      Alcotest.(check bool) (kind ^ " has a positive version") true (v >= 1);
      Alcotest.(check int)
        (kind ^ " lookup agrees")
        v
        (S.Schema.version_of_exn kind))
    S.Schema.table;
  let names = S.Schema.kinds in
  Alcotest.(check int) "kinds covers the table"
    (List.length S.Schema.table)
    (List.length names);
  let uniq = List.sort_uniq compare names in
  Alcotest.(check int) "kinds are unique" (List.length names)
    (List.length uniq);
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " registered") true (List.mem k names))
    [ "measurement"; "metrics"; "alerts"; "profile" ];
  Alcotest.(check (option int)) "unknown kind is None" None
    (S.Schema.version_of "no-such-schema");
  check_raises_invalid "version_of_exn raises on unknown kind" (fun () ->
      S.Schema.version_of_exn "no-such-schema")

(* Emitted documents carry the stamp the registry declares. *)
let documents_match_registry () =
  let t = M.create M.default_config in
  let snap = M.tick t ~now:1e-3 in
  let check_doc kind json =
    Alcotest.(check bool) (kind ^ " stamped") true
      (J.member "schema" json = Some (J.Str kind));
    Alcotest.(check bool)
      (kind ^ " version matches registry")
      true
      (J.member "schema_version" json
      = Some (J.Num (float_of_int (S.Schema.version_of_exn kind))))
  in
  check_doc "metrics" (M.snapshot_to_json snap);
  check_doc "alerts" (M.alerts_to_json t)

let bad_configs_rejected () =
  check_raises_invalid "non-positive interval" (fun () ->
      M.create { M.default_config with interval = 0. });
  let t = M.create M.default_config in
  check_raises_invalid "empty histogram bounds" (fun () ->
      M.histogram t ~entity:"e" ~name:"h" ~bounds:[||] ());
  check_raises_invalid "non-increasing bounds" (fun () ->
      M.histogram t ~entity:"e" ~name:"h" ~bounds:[| 1.; 1. |] ())

let suite =
  [
    quick "slo: grammar parses and round-trips" slo_parse_roundtrip;
    quick "histogram: buckets and quantiles" histogram_buckets_and_quantiles;
    quick "histogram: unrolled and fallback paths agree" histogram_paths_agree;
    quick "histogram: observe_span matches observe" observe_span_matches_observe;
    quick "scalars: counter/gauge/rate deltas" scalar_samples;
    quick "alerts: hysteresis fires and resolves" hysteresis_fire_and_resolve;
    quick "alerts: rising rule" rising_rule_fires;
    quick "alerts: histogram p99 target" histogram_slo_target;
    slow "netsim: metrics on/off bit-identical" metrics_bit_identical;
    slow "netsim: jobs-invariant with metrics attached" metrics_jobs_invariant;
    slow "export: streaming serializer byte-identical"
      streaming_serializer_byte_identical;
    quick "export: openmetrics exposition" openmetrics_export;
    quick "export: alerts and profile JSON" alerts_and_profile_json;
    quick "schema: registry is consistent" schema_registry;
    quick "schema: documents match registry" documents_match_registry;
    quick "config: invalid inputs rejected" bad_configs_rejected;
  ]
