(* Sim-side flow-cache coverage: the lookup state machine and TTL
   expiry through the public API, the alias sampler's domain, the
   per-class attribution arithmetic, the model↔sim acceptance join
   (hit ratios within 5 points at the golden seed), the versioned
   report JSON, and the configuration error paths.

   Horizon discipline: cache hit ratios have a cold-start transient
   that scales with table capacity (a 1024-entry table needs ~1024
   cold packets before evictions reach steady state), so the join
   tests use small tables and a window tens of times the fill time. *)

open Helpers
module Sim = Lognic_sim
module FC = Lognic.Flowcache
module SFC = Sim.Flow_cache
module App = Lognic_apps.Flow_cache
module J = Sim.Telemetry.Json

let fc_spec =
  FC.spec ~zipf:1.1 ~emc_entries:256 ~megaflow_entries:1024 ~flows:4096 ()

let config ?(duration = 5e-3) ?(seed = 17) () =
  Sim.Netsim.Config.(default |> with_seed seed |> with_horizon duration)

let report ?duration ?seed () =
  Sim.Explain.run_flowcache
    ~config:(config ?duration ?seed ())
    fc_spec (App.graph App.default) ~hw:App.hardware
    ~traffic:(App.traffic App.default)

(* ---- lookup state machine through the public API --------------------- *)

let lookup_state_machine () =
  let st = SFC.create ~spec:fc_spec ~warmup:0. in
  (* an unseen flow misses both tables (cold) and gets installed *)
  Alcotest.(check bool) "emc cold miss" false (SFC.emc_lookup st ~now:0. ~flow:7);
  Alcotest.(check bool) "mega cold miss" false
    (SFC.mega_lookup st ~now:0. ~flow:7);
  Alcotest.(check bool) "emc hit after install" true
    (SFC.emc_lookup st ~now:1e-6 ~flow:7);
  (* an EMC-evicted flow still hits the larger megaflow table (warm),
     and the hit promotes it back into the EMC *)
  let tiny = FC.spec ~emc_entries:1 ~megaflow_entries:64 ~flows:16 () in
  let st = SFC.create ~spec:tiny ~warmup:0. in
  ignore (SFC.emc_lookup st ~now:0. ~flow:1);
  ignore (SFC.mega_lookup st ~now:0. ~flow:1);
  ignore (SFC.emc_lookup st ~now:1e-6 ~flow:2);
  ignore (SFC.mega_lookup st ~now:1e-6 ~flow:2);
  (* the 1-entry EMC now holds flow 2; flow 1 was evicted *)
  Alcotest.(check bool) "evicted from 1-entry emc" false
    (SFC.emc_lookup st ~now:2e-6 ~flow:1);
  Alcotest.(check bool) "warm hit in megaflow" true
    (SFC.mega_lookup st ~now:2e-6 ~flow:1);
  Alcotest.(check bool) "promoted back into emc" true
    (SFC.emc_lookup st ~now:3e-6 ~flow:1)

let ttl_expires_entries () =
  let spec = FC.spec ~ttl:1e-3 ~emc_entries:16 ~megaflow_entries:16 ~flows:8 () in
  let st = SFC.create ~spec ~warmup:0. in
  ignore (SFC.emc_lookup st ~now:0. ~flow:3);
  ignore (SFC.mega_lookup st ~now:0. ~flow:3);
  Alcotest.(check bool) "hit within ttl" true
    (SFC.emc_lookup st ~now:5e-4 ~flow:3);
  (* that hit refreshed the stamp to 5e-4; 1.6e-3 is past another ttl *)
  Alcotest.(check bool) "emc entry expired after idle ttl" false
    (SFC.emc_lookup st ~now:1.6e-3 ~flow:3);
  Alcotest.(check bool) "megaflow entry expired too" false
    (SFC.mega_lookup st ~now:1.6e-3 ~flow:3)

let sampler_domain_and_skew () =
  let st = SFC.create ~spec:fc_spec ~warmup:0. in
  let lattice = 1 lsl 30 in
  let hits0 = ref 0 and n = 65536 in
  for i = 0 to n - 1 do
    let bits = i * 16381 mod lattice in
    let f = SFC.draw st ~bits in
    if f < 0 || f >= 4096 then
      Alcotest.failf "draw out of range: flow %d from bits %d" f bits;
    if f = 0 then incr hits0
  done;
  (* Zipf(1.1) over 4096 flows gives the top flow ~11.5% of the mass;
     a uniform population would give 0.024%. The grid sweep above is
     near-uniform over the lattice, so the empirical share must sit
     close to the model's weight for flow 0. *)
  let w = (FC.zipf_weights ~flows:4096 ~s:1.1).(0) in
  check_within ~pct:5. "top-flow popularity matches the zipf weight" w
    (float_of_int !hits0 /. float_of_int n);
  (* same bits, same flow: the draw is a pure function of the lattice
     point *)
  Alcotest.(check int) "draw is deterministic" (SFC.draw st ~bits:12345)
    (SFC.draw st ~bits:12345)

(* ---- per-class attribution ------------------------------------------- *)

let classes_partition_delivered () =
  let r = report () in
  let stats = r.Sim.Explain.fc_stats in
  let delivered =
    r.Sim.Explain.fc_measurement.Sim.Netsim.summary
      .Sim.Telemetry.delivered_packets
  in
  let total =
    Array.fold_left
      (fun acc (c : SFC.class_row) -> acc + c.SFC.c_count)
      0 stats.SFC.fc_classes
  in
  Alcotest.(check int) "class counts sum to delivered packets" delivered total;
  let share =
    Array.fold_left (fun acc c -> acc +. c.SFC.c_share) 0. stats.SFC.fc_classes
  in
  check_close "class shares sum to 1" 1. share;
  Array.iter
    (fun (c : SFC.class_row) ->
      if c.SFC.c_count > 0 then begin
        if c.SFC.c_mean_latency > c.SFC.c_max_latency then
          Alcotest.failf "%s: mean %.3g above max %.3g" c.SFC.c_name
            c.SFC.c_mean_latency c.SFC.c_max_latency;
        if c.SFC.c_p99_latency > c.SFC.c_max_latency then
          Alcotest.failf "%s: p99 %.3g above max %.3g" c.SFC.c_name
            c.SFC.c_p99_latency c.SFC.c_max_latency
      end)
    stats.SFC.fc_classes;
  (* the cold path crosses the 20 µs slow-path round trip, so its mean
     must dominate the hot path's *)
  let mean k = stats.SFC.fc_classes.(k).SFC.c_mean_latency in
  if not (mean 2 > mean 0) then
    Alcotest.failf "cold mean %.3g not above hot mean %.3g" (mean 2) (mean 0)

let lookup_counters_consistent () =
  let r = report () in
  let s = r.Sim.Explain.fc_stats in
  (* every megaflow probe is an EMC miss that survived to the megaflow
     vertex (drops in between can only lose probes, never invent them) *)
  let emc_misses = s.SFC.fc_emc_lookups - s.SFC.fc_emc_hits in
  if s.SFC.fc_mega_lookups > emc_misses then
    Alcotest.failf "megaflow probes %d exceed emc misses %d"
      s.SFC.fc_mega_lookups emc_misses;
  List.iter
    (fun (what, x) ->
      if not (Float.is_finite x && x >= 0. && x <= 1.) then
        Alcotest.failf "%s ratio %.4f outside [0, 1]" what x)
    [
      ("emc", s.SFC.fc_emc_hit_ratio);
      ("megaflow", s.SFC.fc_mega_hit_ratio);
      ("overall", s.SFC.fc_overall_hit_ratio);
    ];
  check_close "overall = hits over emc probes"
    (float_of_int (s.SFC.fc_emc_hits + s.SFC.fc_mega_hits)
    /. float_of_int s.SFC.fc_emc_lookups)
    s.SFC.fc_overall_hit_ratio

(* ---- model vs sim acceptance ----------------------------------------- *)

(* The headline acceptance criterion: at the golden seed the model's
   fixed-point hit ratios land within 5 points (absolute) of the
   simulator's measured ones. *)
let model_matches_sim_hit_ratios () =
  (* the 1024-entry megaflow table needs a window well past its fill
     time: 5 ms leaves a ~6-point cold-start residual on the megaflow
     ratio, 20 ms settles it *)
  let r = report ~duration:2e-2 () in
  List.iter
    (fun (what, err) ->
      if not (Float.is_finite err && err <= 0.05) then
        Alcotest.failf "%s hit-ratio error %.4f exceeds 0.05" what err)
    [
      ("emc", r.Sim.Explain.fc_emc_hit_error);
      ("megaflow", r.Sim.Explain.fc_mega_hit_error);
      ("overall", r.Sim.Explain.fc_overall_hit_error);
    ]

(* ---- report JSON ------------------------------------------------------ *)

let report_json_shape () =
  let j = Sim.Explain.flowcache_to_json (report ()) in
  Alcotest.(check bool) "schema stamp" true
    (J.member "schema" j = Some (J.Str "flowcache"));
  Alcotest.(check bool) "version stamp" true
    (J.member "schema_version" j = Some (J.Num 1.));
  List.iter
    (fun key ->
      if J.member key j = None then Alcotest.failf "missing %S section" key)
    [ "model"; "sim"; "emc_hit_error"; "classes"; "sim_detail" ];
  let rec all_finite = function
    | J.Num x -> Float.is_finite x
    | J.Obj kvs -> List.for_all (fun (_, v) -> all_finite v) kvs
    | J.Arr vs -> List.for_all all_finite vs
    | _ -> true
  in
  Alcotest.(check bool) "all numbers finite" true (all_finite j)

(* ---- error paths ------------------------------------------------------ *)

let missing_cache_vertex_raises () =
  let g =
    Lognic_devices.Liquidio.inline_accel_graph
      ~spec:Lognic_devices.Accel_spec.md5 ~packet_size:Lognic.Units.mtu ()
  in
  let config =
    Sim.Netsim.Config.(
      default |> with_horizon 1e-4 |> with_flow_cache fc_spec)
  in
  check_raises_invalid "md5 graph has no emc vertex" (fun () ->
      Sim.Netsim.run_single ~config g ~hw:Lognic_devices.Liquidio.hardware
        ~traffic:(Lognic.Traffic.make ~rate:1e9 ~packet_size:512.))

let suite =
  [
    quick "flowcache: lookup state machine" lookup_state_machine;
    quick "flowcache: ttl expiry" ttl_expires_entries;
    quick "flowcache: sampler domain and skew" sampler_domain_and_skew;
    slow "flowcache: classes partition delivered" classes_partition_delivered;
    slow "flowcache: lookup counters consistent" lookup_counters_consistent;
    slow "flowcache: model hit ratios within 5 points of sim"
      model_matches_sim_hit_ratios;
    slow "flowcache: report JSON shape" report_json_shape;
    quick "flowcache: missing cache vertex raises" missing_cache_vertex_raises;
  ]
