(* Tests for the execution-graph representation. *)

open Helpers
module G = Lognic.Graph

let svc ?parallelism ?queue_capacity ?overhead ?accel ?partition throughput =
  G.service ?parallelism ?queue_capacity ?overhead ?accel ?partition ~throughput ()

(* A three-vertex linear chain used by several tests. *)
let chain () =
  let g = G.empty in
  let g, a = G.add_vertex ~kind:G.Ingress ~label:"in" ~service:(svc 1e9) g in
  let g, b = G.add_vertex ~kind:G.Ip ~label:"work" ~service:(svc 5e8) g in
  let g, c = G.add_vertex ~kind:G.Egress ~label:"out" ~service:(svc 1e9) g in
  let g = G.add_edge ~delta:1. ~alpha:0.5 ~src:a ~dst:b g in
  let g = G.add_edge ~delta:1. ~beta:0.25 ~src:b ~dst:c g in
  (g, a, b, c)

let construction () =
  let g, a, b, c = chain () in
  Alcotest.(check int) "vertex count" 3 (G.vertex_count g);
  Alcotest.(check int) "dense ids" 0 a;
  Alcotest.(check int) "dense ids" 1 b;
  Alcotest.(check int) "dense ids" 2 c;
  Alcotest.(check int) "edges" 2 (List.length (G.edges g));
  Alcotest.(check string) "label" "work" (G.vertex g b).label;
  Alcotest.(check bool) "edge lookup" true (Option.is_some (G.edge g ~src:a ~dst:b));
  Alcotest.(check bool) "absent edge" true (Option.is_none (G.edge g ~src:a ~dst:c))

let accessors () =
  let g, a, b, c = chain () in
  Alcotest.(check int) "in degree" 1 (G.in_degree g b);
  Alcotest.(check int) "ingress count" 1 (List.length (G.ingress_vertices g));
  Alcotest.(check int) "egress count" 1 (List.length (G.egress_vertices g));
  Alcotest.(check int) "out edges of a" 1 (List.length (G.out_edges g a));
  Alcotest.(check int) "in edges of c" 1 (List.length (G.in_edges g c));
  (match G.find_vertex g ~label:"work" with
  | Some v -> Alcotest.(check int) "find by label" b v.id
  | None -> Alcotest.fail "find_vertex");
  Alcotest.(check bool) "unknown label" true (G.find_vertex g ~label:"nope" = None)

let service_validation () =
  check_raises_invalid "zero throughput" (fun () -> svc 0.);
  check_raises_invalid "zero parallelism" (fun () -> G.service ~parallelism:0 ~throughput:1. ());
  check_raises_invalid "zero queue" (fun () -> G.service ~queue_capacity:0 ~throughput:1. ());
  check_raises_invalid "negative overhead" (fun () ->
      G.service ~overhead:(-1.) ~throughput:1. ());
  check_raises_invalid "partition above 1" (fun () ->
      G.service ~partition:1.5 ~throughput:1. ());
  check_raises_invalid "zero accel" (fun () -> G.service ~accel:0. ~throughput:1. ())

let edge_validation () =
  let g, a, b, _ = chain () in
  check_raises_invalid "unknown src" (fun () -> G.add_edge ~src:99 ~dst:b g);
  check_raises_invalid "self loop" (fun () -> G.add_edge ~src:a ~dst:a g);
  check_raises_invalid "duplicate" (fun () -> G.add_edge ~src:a ~dst:b g);
  check_raises_invalid "negative delta" (fun () ->
      G.add_edge ~delta:(-0.5) ~src:b ~dst:a g);
  check_raises_invalid "zero bandwidth" (fun () ->
      G.add_edge ~bandwidth:0. ~src:b ~dst:a g)

let mutation () =
  let g, _, b, c = chain () in
  let g = G.set_service g b (svc 7e8) in
  check_close "service replaced" 7e8 (G.vertex g b).service.throughput;
  let g = G.update_service g b (fun s -> { s with G.queue_capacity = 5 }) in
  Alcotest.(check int) "service updated" 5 (G.vertex g b).service.queue_capacity;
  let g = G.set_edge_params ~delta:0.5 ~src:b ~dst:c g in
  (match G.edge g ~src:b ~dst:c with
  | Some e ->
    check_close "delta changed" 0.5 e.delta;
    check_close "beta preserved" 0.25 e.beta
  | None -> Alcotest.fail "edge vanished");
  check_raises_invalid "set params on missing edge" (fun () ->
      G.set_edge_params ~delta:1. ~src:c ~dst:b g)

let remove_edge () =
  let g, a, b, _ = chain () in
  let g' = G.remove_edge ~src:a ~dst:b g in
  Alcotest.(check int) "one edge left" 1 (List.length (G.edges g'));
  check_raises_invalid "double removal" (fun () -> G.remove_edge ~src:a ~dst:b g')

let fanout () =
  let g = G.empty in
  let g, i = G.add_vertex ~kind:G.Ingress ~label:"in" ~service:(svc 1e9) g in
  let g, x = G.add_vertex ~kind:G.Ip ~label:"x" ~service:(svc 1e9) g in
  let g, y = G.add_vertex ~kind:G.Ip ~label:"y" ~service:(svc 1e9) g in
  let g, e = G.add_vertex ~kind:G.Egress ~label:"out" ~service:(svc 1e9) g in
  let g = G.add_edge ~delta:0.6 ~alpha:0.6 ~src:i ~dst:x g in
  let g = G.add_edge ~delta:0.4 ~alpha:0.4 ~src:i ~dst:y g in
  let g = G.add_edge ~delta:0.6 ~src:x ~dst:e g in
  let g = G.add_edge ~delta:0.4 ~src:y ~dst:e g in
  (g, i, x, y, e)

let scale_out_split () =
  let g, i, x, y, _ = fanout () in
  let g = G.scale_out_split g i [ 1.; 3. ] in
  (match (G.edge g ~src:i ~dst:x, G.edge g ~src:i ~dst:y) with
  | Some ex, Some ey ->
    check_close "new delta x" 0.25 ex.delta;
    check_close "new delta y" 0.75 ey.delta;
    (* alpha stays proportional to delta per edge *)
    check_close "alpha x rescaled" 0.25 ex.alpha;
    check_close "alpha y rescaled" 0.75 ey.alpha
  | _ -> Alcotest.fail "edges missing");
  check_raises_invalid "length mismatch" (fun () -> G.scale_out_split g i [ 1. ]);
  check_raises_invalid "all-zero split" (fun () -> G.scale_out_split g i [ 0.; 0. ]);
  check_raises_invalid "negative split" (fun () -> G.scale_out_split g i [ -1.; 2. ])

(* Degenerate fraction vectors must be rejected up front — an all-zero
   or NaN list would otherwise divide by total_fraction = 0 (or
   propagate NaN through it) and silently poison every out-edge's
   δ/α/β. The error must name the vertex so feedback-split callers can
   locate the offending split. *)
let scale_out_split_degenerate () =
  let g, i, _, _, _ = fanout () in
  let rejects label fractions =
    match G.scale_out_split g i fractions with
    | _ -> Alcotest.failf "%s: expected Invalid_argument" label
    | exception Invalid_argument msg ->
      if not (contains_substring msg "in") then
        Alcotest.failf "%s: error %S does not name the vertex" label msg
  in
  rejects "all-zero" [ 0.; 0. ];
  rejects "nan fraction" [ Float.nan; 1. ];
  rejects "all-nan" [ Float.nan; Float.nan ];
  rejects "infinite fraction" [ infinity; 1. ];
  rejects "negative infinity" [ neg_infinity; 1. ];
  (* a single zero inside an otherwise-positive vector stays legal *)
  let g' = G.scale_out_split g i [ 0.; 1. ] in
  match (G.edge g' ~src:i ~dst:1, G.edge g' ~src:i ~dst:2) with
  | Some ex, Some ey ->
    check_close "zeroed edge" 0. ex.delta;
    check_close "kept edge gets the whole delta" 1. ey.delta
  | _ -> Alcotest.fail "edges missing"

let topology () =
  let g, a, b, c = chain () in
  (match G.topological_order g with
  | Some order -> Alcotest.(check (list int)) "topo order" [ a; b; c ] order
  | None -> Alcotest.fail "chain is a DAG");
  Alcotest.(check bool) "is dag" true (G.is_dag g)

let cycle_detection () =
  let g = G.empty in
  let g, a = G.add_vertex ~kind:G.Ip ~label:"a" ~service:(svc 1.) g in
  let g, b = G.add_vertex ~kind:G.Ip ~label:"b" ~service:(svc 1.) g in
  let g = G.add_edge ~src:a ~dst:b g in
  let g = G.add_edge ~src:b ~dst:a g in
  Alcotest.(check bool) "cycle detected" false (G.is_dag g)

let paths_enumeration () =
  let g, i, x, y, e = fanout () in
  let paths = G.paths g in
  Alcotest.(check int) "two paths" 2 (List.length paths);
  Alcotest.(check bool) "path via x" true (List.mem [ i; x; e ] paths);
  Alcotest.(check bool) "path via y" true (List.mem [ i; y; e ] paths)

let paths_limit () =
  (* A diamond ladder has exponentially many paths; the limit fires. *)
  let g = ref G.empty in
  let add kind label =
    let g', id = G.add_vertex ~kind ~label ~service:(svc 1e9) !g in
    g := g';
    id
  in
  let first = add G.Ingress "in" in
  let prev = ref first in
  for layer = 1 to 16 do
    let x = add G.Ip (Printf.sprintf "x%d" layer) in
    let y = add G.Ip (Printf.sprintf "y%d" layer) in
    let join = add G.Ip (Printf.sprintf "j%d" layer) in
    g := G.add_edge ~delta:0.5 ~src:!prev ~dst:x !g;
    g := G.add_edge ~delta:0.5 ~src:!prev ~dst:y !g;
    g := G.add_edge ~delta:0.5 ~src:x ~dst:join !g;
    g := G.add_edge ~delta:0.5 ~src:y ~dst:join !g;
    prev := join
  done;
  let out = add G.Egress "out" in
  g := G.add_edge ~src:!prev ~dst:out !g;
  Alcotest.check_raises "path explosion guarded" (G.Path_limit_exceeded 10_000)
    (fun () -> ignore (G.paths !g));
  (* The total variant degrades to the first [limit] paths instead. *)
  let capped, status = G.paths_capped ~limit:100 !g in
  Alcotest.(check int) "capped at limit" 100 (List.length capped);
  Alcotest.(check bool) "flagged truncated" true (status = `Truncated);
  let small, status = G.paths_capped ~limit:1_000_000 !g in
  Alcotest.(check int) "complete below limit" 65536 (List.length small);
  Alcotest.(check bool) "flagged complete" true (status = `Complete)

let validation () =
  let g, _, _, _ = chain () in
  Alcotest.(check bool) "valid chain" true (Result.is_ok (G.validate g));
  (* no ingress *)
  let g2 = G.empty in
  let g2, _ = G.add_vertex ~kind:G.Egress ~label:"out" ~service:(svc 1.) g2 in
  Alcotest.(check bool) "missing ingress" true (Result.is_error (G.validate g2));
  (* orphan IP vertex *)
  let g3, _, _, _ = chain () in
  let g3, _ = G.add_vertex ~kind:G.Ip ~label:"orphan" ~service:(svc 1.) g3 in
  (match G.validate g3 with
  | Error errors ->
    Alcotest.(check bool)
      "mentions orphan" true
      (List.exists (fun e -> String.length e > 0) errors);
    Alcotest.(check int) "unreachable and co-unreachable" 2 (List.length errors)
  | Ok () -> Alcotest.fail "orphan should invalidate")

let pretty_printer_runs () =
  let g, _, _, _ = chain () in
  let rendered = Fmt.str "%a" G.pp g in
  Alcotest.(check bool) "mentions labels" true
    (contains_substring rendered "work")

(* Properties *)

let arbitrary_split =
  QCheck.(list_of_size (Gen.int_range 2 6) (float_range 0.1 10.))

let properties =
  [
    prop "scale_out_split preserves total delta" arbitrary_split (fun fractions ->
        let g, i, _, _, _ = fanout () in
        let k = List.length (G.out_edges g i) in
        QCheck.assume (List.length fractions >= k);
        let fractions = List.filteri (fun idx _ -> idx < k) fractions in
        let total_before =
          List.fold_left (fun acc (e : G.edge) -> acc +. e.delta) 0. (G.out_edges g i)
        in
        let g = G.scale_out_split g i fractions in
        let total_after =
          List.fold_left (fun acc (e : G.edge) -> acc +. e.delta) 0. (G.out_edges g i)
        in
        abs_float (total_before -. total_after) < 1e-9);
    prop "topological order respects every edge"
      QCheck.(int_range 2 10)
      (fun n ->
        (* random-ish DAG: edges only forward by construction *)
        let g = ref G.empty in
        let ids =
          List.init n (fun i ->
              let kind =
                if i = 0 then G.Ingress else if i = n - 1 then G.Egress else G.Ip
              in
              let g', id =
                G.add_vertex ~kind ~label:(string_of_int i) ~service:(svc 1e9) !g
              in
              g := g';
              id)
        in
        List.iteri
          (fun i id ->
            if i + 1 < n then
              g := G.add_edge ~delta:1. ~src:id ~dst:(List.nth ids (i + 1)) !g)
          ids;
        match G.topological_order !g with
        | None -> false
        | Some order ->
          let position = Hashtbl.create 16 in
          List.iteri (fun i id -> Hashtbl.replace position id i) order;
          List.for_all
            (fun (e : G.edge) -> Hashtbl.find position e.src < Hashtbl.find position e.dst)
            (G.edges !g));
  ]

let suite =
  [
    quick "construction" construction;
    quick "accessors" accessors;
    quick "service validation" service_validation;
    quick "edge validation" edge_validation;
    quick "functional mutation" mutation;
    quick "remove edge" remove_edge;
    quick "scale_out_split" scale_out_split;
    quick "scale_out_split degenerate fractions" scale_out_split_degenerate;
    quick "topological order" topology;
    quick "cycle detection" cycle_detection;
    quick "path enumeration" paths_enumeration;
    quick "path explosion guard" paths_limit;
    quick "validation" validation;
    quick "pretty printer" pretty_printer_runs;
  ]
  @ properties
