(* Unit and property tests for lognic_numerics. *)

open Helpers
module N = Lognic_numerics

(* Rng *)

let rng_deterministic () =
  let a = N.Rng.create ~seed:7 and b = N.Rng.create ~seed:7 in
  for _ = 1 to 100 do
    check_close "same seed, same stream" (N.Rng.float a 1.) (N.Rng.float b 1.)
  done

let rng_seed_changes_stream () =
  let a = N.Rng.create ~seed:1 and b = N.Rng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if N.Rng.float a 1. = N.Rng.float b 1. then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 8)

let rng_split_independent () =
  let parent = N.Rng.create ~seed:3 in
  let child = N.Rng.split parent in
  (* Drawing from the child must not equal drawing the same positions
     from a fresh parent clone (the split advanced the parent). *)
  let fresh = N.Rng.create ~seed:3 in
  let _ = N.Rng.split fresh in
  check_close "split is a pure function of parent state"
    (N.Rng.float (N.Rng.split (N.Rng.create ~seed:3)) 1.)
    (N.Rng.float child 1.)

let rng_bounds () =
  let rng = N.Rng.create ~seed:11 in
  for _ = 1 to 1000 do
    let f = N.Rng.float rng 3.5 in
    Alcotest.(check bool) "float in range" true (f >= 0. && f < 3.5);
    let i = N.Rng.int rng 17 in
    Alcotest.(check bool) "int in range" true (i >= 0 && i < 17)
  done

(* Dist *)

let dist_means () =
  check_close "constant" 5. N.Dist.(mean (constant 5.));
  check_close "uniform" 3. N.Dist.(mean (uniform ~lo:2. ~hi:4.));
  check_close "exponential" 0.25 N.Dist.(mean (exponential ~rate:4.));
  check_close ~tol:1e-6 "lognormal" (exp 0.5)
    N.Dist.(mean (lognormal ~mu:0. ~sigma:1.));
  check_close "empirical" 2.5
    N.Dist.(mean (empirical [ (1., 1.); (4., 1.) ]))

let dist_sample_statistics () =
  let rng = N.Rng.create ~seed:5 in
  let sample_mean dist n =
    let acc = ref 0. in
    for _ = 1 to n do
      acc := !acc +. N.Dist.sample dist rng
    done;
    !acc /. float_of_int n
  in
  check_within ~pct:3. "exponential sample mean" 0.5
    (sample_mean (N.Dist.exponential ~rate:2.) 50_000);
  check_within ~pct:3. "uniform sample mean" 5.
    (sample_mean (N.Dist.uniform ~lo:0. ~hi:10.) 50_000);
  check_close "constant sample" 7. (sample_mean (N.Dist.constant 7.) 10)

let dist_empirical_weights () =
  let rng = N.Rng.create ~seed:9 in
  let dist = N.Dist.empirical [ (1., 3.); (2., 1.) ] in
  let ones = ref 0 in
  let n = 40_000 in
  for _ = 1 to n do
    if N.Dist.sample dist rng = 1. then incr ones
  done;
  check_within ~pct:3. "3:1 point masses" 0.75
    (float_of_int !ones /. float_of_int n)

let dist_poisson_mean () =
  let rng = N.Rng.create ~seed:13 in
  let total = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    total := !total + N.Dist.sample_poisson ~rate:3.5 rng
  done;
  check_within ~pct:3. "poisson mean" 3.5 (float_of_int !total /. float_of_int n);
  (* large-rate branch *)
  let big = N.Dist.sample_poisson ~rate:1000. rng in
  Alcotest.(check bool) "large-rate sane" true (big > 800 && big < 1200)

let dist_validation () =
  Alcotest.(check bool)
    "negative exponential rejected" true
    (Result.is_error N.Dist.(validate (Exponential (-1.))));
  Alcotest.(check bool)
    "inverted uniform rejected" true
    (Result.is_error N.Dist.(validate (Uniform (2., 1.))));
  Alcotest.(check bool)
    "valid accepted" true
    (Result.is_ok N.Dist.(validate (Exponential 2.)));
  check_raises_invalid "empty empirical" (fun () -> N.Dist.empirical []);
  check_raises_invalid "negative weight" (fun () ->
      N.Dist.empirical [ (1., -1.); (2., 2.) ])

(* Stats *)

let stats_basics () =
  let xs = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  check_close "mean" 5. (N.Stats.mean xs);
  check_close ~tol:1e-6 "variance" (32. /. 7.) (N.Stats.variance xs);
  check_close "median" 4.5 (N.Stats.median xs);
  check_close "min" 2. (N.Stats.minimum xs);
  check_close "max" 9. (N.Stats.maximum xs);
  check_close "p0" 2. (N.Stats.percentile xs 0.);
  check_close "p100" 9. (N.Stats.percentile xs 100.)

let stats_nan_policy () =
  (* One policy across the order statistics: NaN samples are ignored,
     and the result is NaN only when every sample is NaN. *)
  let xs = [| Float.nan; 4.; 2.; Float.nan; 9. |] in
  check_close "minimum ignores NaN" 2. (N.Stats.minimum xs);
  check_close "maximum ignores NaN" 9. (N.Stats.maximum xs);
  check_close "p0 ignores NaN" 2. (N.Stats.percentile xs 0.);
  check_close "p50 ignores NaN" 4. (N.Stats.percentile xs 50.);
  check_close "p100 ignores NaN" 9. (N.Stats.percentile xs 100.);
  let all_nan = [| Float.nan; Float.nan |] in
  Alcotest.(check bool) "all-NaN minimum" true
    (Float.is_nan (N.Stats.minimum all_nan));
  Alcotest.(check bool) "all-NaN maximum" true
    (Float.is_nan (N.Stats.maximum all_nan));
  Alcotest.(check bool) "all-NaN percentile" true
    (Float.is_nan (N.Stats.percentile all_nan 50.))

let stats_percentile_interpolates () =
  let xs = [| 10.; 20. |] in
  check_close "p50 interpolation" 15. (N.Stats.percentile xs 50.);
  check_close "p25 interpolation" 12.5 (N.Stats.percentile xs 25.)

let stats_percentile_does_not_mutate () =
  let xs = [| 3.; 1.; 2. |] in
  let _ = N.Stats.percentile xs 50. in
  Alcotest.(check (list (float 0.))) "input order preserved" [ 3.; 1.; 2. ]
    (Array.to_list xs)

let stats_relative_error () =
  check_close "10% error" 0.1 (N.Stats.relative_error ~actual:110. ~expected:100.);
  check_close "zero-zero" 0. (N.Stats.relative_error ~actual:0. ~expected:0.);
  Alcotest.(check bool)
    "zero expected" true
    (N.Stats.relative_error ~actual:1. ~expected:0. = infinity)

let stats_weighted_geometric () =
  check_close "weighted mean" 2.5
    (N.Stats.weighted_mean [ (1., 1.); (3., 3.) ]);
  check_close ~tol:1e-9 "geometric mean" 2. (N.Stats.geometric_mean [| 1.; 4. |]);
  check_raises_invalid "geometric needs positive" (fun () ->
      N.Stats.geometric_mean [| 1.; 0. |]);
  check_raises_invalid "weighted needs mass" (fun () ->
      N.Stats.weighted_mean [ (1., 0.) ])

let stats_online_matches_batch () =
  let xs = [| 1.5; 2.5; 3.5; 10.; -4.; 0.25 |] in
  let online = N.Stats.Online.create () in
  Array.iter (N.Stats.Online.add online) xs;
  check_close ~tol:1e-12 "online mean" (N.Stats.mean xs)
    (N.Stats.Online.mean online);
  check_close ~tol:1e-9 "online variance" (N.Stats.variance xs)
    (N.Stats.Online.variance online);
  Alcotest.(check int) "count" 6 (N.Stats.Online.count online)

let stats_histogram () =
  let h = N.Stats.Histogram.create ~lo:0. ~hi:10. ~bins:5 in
  List.iter (N.Stats.Histogram.add h) [ 1.; 3.; 3.; 9.; -5.; 50.; Float.nan ];
  Alcotest.(check int) "total counts every sample" 7 (N.Stats.Histogram.total h);
  let counts = N.Stats.Histogram.counts h in
  Alcotest.(check int) "first bin" 1 counts.(0);
  Alcotest.(check int) "middle" 2 counts.(1);
  Alcotest.(check int) "last bin" 1 counts.(4);
  Alcotest.(check int) "underflow not clamped" 1 (N.Stats.Histogram.underflow h);
  Alcotest.(check int) "overflow not clamped" 1 (N.Stats.Histogram.overflow h);
  Alcotest.(check int) "nan counted" 1 (N.Stats.Histogram.nan_count h);
  Alcotest.(check int) "in_range" 4 (N.Stats.Histogram.in_range h);
  (* hi itself belongs to the last bin, not to overflow *)
  N.Stats.Histogram.add h 10.;
  Alcotest.(check int) "hi lands in last bin" 2 (N.Stats.Histogram.counts h).(4);
  Alcotest.(check int) "hi is in range" 5 (N.Stats.Histogram.in_range h);
  check_close "bin midpoint" 3. (N.Stats.Histogram.bin_mid h 1)

let stats_empty_rejected () =
  check_raises_invalid "mean of empty" (fun () -> N.Stats.mean [||]);
  check_raises_invalid "percentile of empty" (fun () ->
      N.Stats.percentile [||] 50.)

(* Vec *)

let vec_arithmetic () =
  let a = [| 1.; 2.; 3. |] and b = [| 4.; 5.; 6. |] in
  Alcotest.(check (array (float 1e-12))) "add" [| 5.; 7.; 9. |] (N.Vec.add a b);
  Alcotest.(check (array (float 1e-12))) "sub" [| 3.; 3.; 3. |] (N.Vec.sub b a);
  Alcotest.(check (array (float 1e-12))) "scale" [| 2.; 4.; 6. |] (N.Vec.scale 2. a);
  check_close "dot" 32. (N.Vec.dot a b);
  check_close "norm" 5. (N.Vec.norm2 [| 3.; 4. |]);
  check_close "dist" 5. (N.Vec.dist [| 0.; 0. |] [| 3.; 4. |]);
  Alcotest.(check (array (float 1e-12)))
    "axpy" [| 6.; 9.; 12. |]
    (N.Vec.axpy 2. a b)

let vec_centroid_clamp_linspace () =
  Alcotest.(check (array (float 1e-12)))
    "centroid" [| 2.; 3. |]
    (N.Vec.centroid [ [| 1.; 2. |]; [| 3.; 4. |] ]);
  Alcotest.(check (array (float 1e-12)))
    "clamp" [| 0.; 1.; 0.5 |]
    (N.Vec.clamp ~lo:[| 0.; 0.; 0. |] ~hi:[| 1.; 1.; 1. |] [| -3.; 7.; 0.5 |]);
  Alcotest.(check (array (float 1e-12)))
    "linspace" [| 0.; 0.5; 1. |] (N.Vec.linspace 0. 1. 3);
  check_raises_invalid "length mismatch" (fun () -> N.Vec.add [| 1. |] [| 1.; 2. |]);
  check_raises_invalid "empty centroid" (fun () -> N.Vec.centroid [])

(* Optimizers *)

let nelder_mead_quadratic () =
  let f x = ((x.(0) -. 3.) ** 2.) +. ((x.(1) +. 1.) ** 2.) in
  let r = N.Nelder_mead.minimize ~f ~x0:[| 0.; 0. |] () in
  Alcotest.(check bool) "converged" true r.converged;
  check_close ~tol:1e-3 "x0" 3. r.x.(0);
  check_close ~tol:1e-3 "x1" (-1.) r.x.(1)

let nelder_mead_rosenbrock () =
  let f x =
    (100. *. ((x.(1) -. (x.(0) *. x.(0))) ** 2.)) +. ((1. -. x.(0)) ** 2.)
  in
  let r =
    N.Nelder_mead.minimize
      ~options:{ N.Nelder_mead.default_options with max_iter = 10_000 }
      ~f ~x0:[| -1.2; 1. |] ()
  in
  check_close ~tol:1e-2 "rosenbrock x" 1. r.x.(0);
  check_close ~tol:1e-2 "rosenbrock y" 1. r.x.(1)

let nelder_mead_rejects_infinite_regions () =
  (* f = infinity outside the unit box; minimum at the box corner. *)
  let f x =
    if x.(0) < 0. || x.(0) > 1. then infinity else (x.(0) -. 2.) ** 2.
  in
  let r = N.Nelder_mead.minimize ~f ~x0:[| 0.5 |] () in
  check_close ~tol:1e-3 "clamped to boundary" 1. r.x.(0)

let golden_section () =
  let x, v = N.Golden.minimize ~f:(fun x -> (x -. 1.7) ** 2.) ~lo:0. ~hi:10. () in
  check_close ~tol:1e-5 "argmin" 1.7 x;
  check_close ~tol:1e-9 "min value" 0. v;
  check_raises_invalid "bad interval" (fun () ->
      N.Golden.minimize ~f:Fun.id ~lo:1. ~hi:0. ())

let grid_search () =
  let x, v = N.Grid.minimize_int ~f:(fun i -> float_of_int ((i - 4) * (i - 4))) ~lo:0 ~hi:10 () in
  Alcotest.(check int) "argmin int" 4 x;
  check_close "min value" 0. v;
  let x, v = N.Grid.maximize_int ~f:(fun i -> float_of_int i) ~lo:2 ~hi:9 () in
  Alcotest.(check int) "argmax" 9 x;
  check_close "max" 9. v

let grid_multidim () =
  let f idx =
    let x = float_of_int idx.(0) and y = float_of_int idx.(1) in
    ((x -. 2.) ** 2.) +. ((y -. 5.) ** 2.)
  in
  let best, v = N.Grid.minimize_ints ~f ~ranges:[| (0, 4); (3, 8) |] () in
  Alcotest.(check (array int)) "argmin" [| 2; 5 |] best;
  check_close "value" 0. v;
  let axes = [| [| 0.; 0.5; 1.0 |]; [| 10.; 20. |] |] in
  let pt, _ =
    N.Grid.minimize_floats ~f:(fun p -> abs_float (p.(0) -. 0.5) +. p.(1)) ~axes ()
  in
  Alcotest.(check (array (float 1e-12))) "float grid" [| 0.5; 10. |] pt

let grid_smallest_within () =
  (* cost plateaus from 5 onward *)
  let f n = if n >= 5 then 10. else 10. +. float_of_int (5 - n) in
  let n = N.Grid.argmin_smallest_within ~f ~lo:1 ~hi:10 ~slack:0.01 () in
  Alcotest.(check int) "smallest within slack" 5 n

let constrained_penalty () =
  (* minimize x^2 + y^2 subject to x + y >= 1 -> (0.5, 0.5) *)
  let problem =
    {
      N.Constrained.objective = (fun x -> (x.(0) ** 2.) +. (x.(1) ** 2.));
      inequality = [ (fun x -> 1. -. x.(0) -. x.(1)) ];
      lower = [| -2.; -2. |];
      upper = [| 2.; 2. |];
    }
  in
  let s = N.Constrained.multi_start ~rng:(N.Rng.create ~seed:21) problem in
  Alcotest.(check bool) "feasible" true s.feasible;
  check_close ~tol:2e-2 "x" 0.5 s.x.(0);
  check_close ~tol:2e-2 "y" 0.5 s.x.(1)

let constrained_box_only () =
  let problem =
    {
      N.Constrained.objective = (fun x -> -.x.(0));
      inequality = [];
      lower = [| 0. |];
      upper = [| 3. |];
    }
  in
  let s = N.Constrained.minimize problem [| 1. |] in
  check_close ~tol:1e-2 "pushed to upper bound" 3. s.x.(0)

(* Curve fitting *)

let linear_fit () =
  let data = Array.init 10 (fun i -> (float_of_int i, (2.5 *. float_of_int i) +. 1.)) in
  let slope, intercept = N.Curve_fit.linear ~data in
  check_close ~tol:1e-9 "slope" 2.5 slope;
  check_close ~tol:1e-9 "intercept" 1. intercept;
  check_raises_invalid "degenerate x" (fun () ->
      N.Curve_fit.linear ~data:[| (1., 1.); (1., 2.) |])

let nonlinear_fit_recovers_parameters () =
  let truth = [| 2e-5; 1e9 |] in
  let data =
    Array.init 12 (fun i ->
        let rate = 0.9e9 *. float_of_int (i + 1) /. 12. in
        (rate, N.Curve_fit.mm1_latency_model truth rate))
  in
  let fit =
    N.Curve_fit.fit ~model:N.Curve_fit.mm1_latency_model ~data
      ~p0:[| 1e-5; 2e9 |] ()
  in
  check_within ~pct:2. "t0 recovered" truth.(0) fit.params.(0);
  check_within ~pct:2. "capacity recovered" truth.(1) fit.params.(1);
  Alcotest.(check bool) "good r^2" true (fit.r_squared > 0.999)

let mm1_model_domain () =
  Alcotest.(check bool)
    "beyond capacity is infinite" true
    (N.Curve_fit.mm1_latency_model [| 1e-5; 1e9 |] 1.5e9 = infinity)

(* Interp *)

let interp_basics () =
  let t = N.Interp.of_points [ (0., 0.); (10., 100.); (20., 100.) ] in
  check_close "interpolates" 50. (N.Interp.eval t 5.);
  check_close "knot value" 100. (N.Interp.eval t 10.);
  check_close "clamps below" 0. (N.Interp.eval t (-5.));
  check_close "clamps above" 100. (N.Interp.eval t 999.);
  Alcotest.(check (pair (float 0.) (float 0.))) "domain" (0., 20.) (N.Interp.domain t);
  check_raises_invalid "duplicate x" (fun () ->
      N.Interp.of_points [ (1., 1.); (1., 2.) ]);
  check_raises_invalid "empty" (fun () -> N.Interp.of_points [])

let interp_sorts_input () =
  let t = N.Interp.of_points [ (10., 1.); (0., 0.) ] in
  check_close "unsorted input handled" 0.5 (N.Interp.eval t 5.)

(* Properties *)

let properties =
  [
    prop "percentile is monotone in p"
      QCheck.(
        pair
          (array_of_size (Gen.int_range 1 50) (float_range (-1e3) 1e3))
          (pair (float_range 0. 100.) (float_range 0. 100.)))
      (fun (xs, (p1, p2)) ->
        let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
        N.Stats.percentile xs lo <= N.Stats.percentile xs hi +. 1e-9);
    prop "mean between min and max"
      QCheck.(array_of_size (Gen.int_range 1 50) (float_range (-1e3) 1e3))
      (fun xs ->
        let m = N.Stats.mean xs in
        N.Stats.minimum xs -. 1e-9 <= m && m <= N.Stats.maximum xs +. 1e-9);
    prop "exponential samples are positive"
      QCheck.(pair (float_range 0.1 100.) small_int)
      (fun (rate, seed) ->
        let rng = N.Rng.create ~seed in
        N.Dist.sample (N.Dist.exponential ~rate) rng > 0.);
    prop "interp stays within y-range"
      QCheck.(
        pair
          (list_of_size (Gen.int_range 2 20)
             (pair (float_range 0. 100.) (float_range (-50.) 50.)))
          (float_range (-10.) 110.))
      (fun (points, x) ->
        (* dedupe x values to satisfy the precondition *)
        let seen = Hashtbl.create 16 in
        let points =
          List.filter
            (fun (x, _) ->
              if Hashtbl.mem seen x then false
              else begin
                Hashtbl.add seen x ();
                true
              end)
            points
        in
        QCheck.assume (List.length points >= 1);
        let t = N.Interp.of_points points in
        let ys = List.map snd points in
        let y = N.Interp.eval t x in
        y >= List.fold_left Float.min infinity ys -. 1e-9
        && y <= List.fold_left Float.max neg_infinity ys +. 1e-9);
    prop "golden finds the vertex of shifted parabolas"
      QCheck.(float_range (-50.) 50.)
      (fun c ->
        let x, _ =
          N.Golden.minimize ~f:(fun x -> (x -. c) ** 2.) ~lo:(-100.) ~hi:100. ()
        in
        abs_float (x -. c) < 1e-4);
  ]

(* Lru *)

let lru_evicts_least_recent () =
  let c = Lognic_numerics.Lru.create ~capacity:2 in
  Lognic_numerics.Lru.add c "a" 1;
  Lognic_numerics.Lru.add c "b" 2;
  (* touch "a" so "b" is the eviction victim when "c" arrives *)
  Alcotest.(check (option int)) "hit a" (Some 1) (Lognic_numerics.Lru.find_opt c "a");
  Lognic_numerics.Lru.add c "c" 3;
  Alcotest.(check int) "stays at capacity" 2 (Lognic_numerics.Lru.length c);
  Alcotest.(check (option int)) "b evicted" None (Lognic_numerics.Lru.find_opt c "b");
  Alcotest.(check (option int)) "a survives" (Some 1) (Lognic_numerics.Lru.find_opt c "a");
  Alcotest.(check (option int)) "c present" (Some 3) (Lognic_numerics.Lru.find_opt c "c")

let lru_counts_hits_and_misses () =
  let c = Lognic_numerics.Lru.create ~capacity:4 in
  Alcotest.(check (option int)) "cold miss" None (Lognic_numerics.Lru.find_opt c 1);
  Lognic_numerics.Lru.add c 1 10;
  ignore (Lognic_numerics.Lru.find_opt c 1);
  ignore (Lognic_numerics.Lru.find_opt c 1);
  ignore (Lognic_numerics.Lru.find_opt c 2);
  Alcotest.(check int) "hits" 2 (Lognic_numerics.Lru.hits c);
  Alcotest.(check int) "misses" 2 (Lognic_numerics.Lru.misses c);
  Alcotest.(check int) "capacity" 4 (Lognic_numerics.Lru.capacity c)

let lru_refresh_updates_value () =
  let c = Lognic_numerics.Lru.create ~capacity:2 in
  Lognic_numerics.Lru.add c "k" 1;
  Lognic_numerics.Lru.add c "k" 2;
  Alcotest.(check int) "no duplicate" 1 (Lognic_numerics.Lru.length c);
  Alcotest.(check (option int)) "latest value" (Some 2) (Lognic_numerics.Lru.find_opt c "k");
  check_raises_invalid "capacity >= 1" (fun () ->
      Lognic_numerics.Lru.create ~capacity:0)

let suite =
  [
    quick "rng: deterministic" rng_deterministic;
    quick "lru: evicts least-recently used" lru_evicts_least_recent;
    quick "lru: hit/miss counters" lru_counts_hits_and_misses;
    quick "lru: refresh in place" lru_refresh_updates_value;
    quick "rng: seed changes stream" rng_seed_changes_stream;
    quick "rng: split reproducible" rng_split_independent;
    quick "rng: bounds" rng_bounds;
    quick "dist: closed-form means" dist_means;
    slow "dist: sample statistics" dist_sample_statistics;
    slow "dist: empirical weights" dist_empirical_weights;
    slow "dist: poisson mean" dist_poisson_mean;
    quick "dist: validation" dist_validation;
    quick "stats: basics" stats_basics;
    quick "stats: NaN policy" stats_nan_policy;
    quick "stats: percentile interpolation" stats_percentile_interpolates;
    quick "stats: percentile purity" stats_percentile_does_not_mutate;
    quick "stats: relative error" stats_relative_error;
    quick "stats: weighted/geometric means" stats_weighted_geometric;
    quick "stats: online accumulator" stats_online_matches_batch;
    quick "stats: histogram" stats_histogram;
    quick "stats: empty inputs rejected" stats_empty_rejected;
    quick "vec: arithmetic" vec_arithmetic;
    quick "vec: centroid/clamp/linspace" vec_centroid_clamp_linspace;
    quick "nelder-mead: quadratic" nelder_mead_quadratic;
    quick "nelder-mead: rosenbrock" nelder_mead_rosenbrock;
    quick "nelder-mead: infinite regions" nelder_mead_rejects_infinite_regions;
    quick "golden: parabola" golden_section;
    quick "grid: 1d" grid_search;
    quick "grid: multi-dimensional" grid_multidim;
    quick "grid: smallest within slack" grid_smallest_within;
    quick "constrained: penalty method" constrained_penalty;
    quick "constrained: box bounds" constrained_box_only;
    quick "curve-fit: linear" linear_fit;
    quick "curve-fit: nonlinear recovery" nonlinear_fit_recovers_parameters;
    quick "curve-fit: mm1 domain" mm1_model_domain;
    quick "interp: basics" interp_basics;
    quick "interp: sorts input" interp_sorts_input;
  ]
  @ properties
