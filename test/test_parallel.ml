(* Tests for the domain-pool parallel layer: order preservation,
   exception propagation, and the headline guarantee that parallel
   replicated simulation is bit-identical to the sequential driver. *)

open Helpers
module S = Lognic_sim
module G = Lognic.Graph
module U = Lognic.Units
module T = Lognic.Traffic
module P = Lognic_numerics.Parallel

let map_matches_list_map () =
  let xs = List.init 100 (fun i -> i - 50) in
  let f x = (x * x) - (3 * x) in
  Alcotest.(check (list int)) "order and values" (List.map f xs) (P.map ~jobs:4 f xs);
  Alcotest.(check (list int)) "jobs:1 sequential path" (List.map f xs) (P.map ~jobs:1 f xs);
  Alcotest.(check (list int)) "empty" [] (P.map ~jobs:4 f []);
  Alcotest.(check (list int)) "singleton" [ f 7 ] (P.map ~jobs:4 f [ 7 ])

let map_propagates_first_exception () =
  (* Several elements throw; the smallest input index must win at every
     job count (the guarantee callers rely on for determinism). *)
  let f x = if x mod 2 = 1 then failwith (Printf.sprintf "boom %d" x) else x in
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Printf.sprintf "first failure wins at jobs:%d" jobs)
        (Failure "boom 1")
        (fun () -> ignore (P.map ~jobs f (List.init 10 Fun.id))))
    [ 1; 4 ]

let sweep_tags_points () =
  let pts = [ 2.; 3.; 5. ] in
  Alcotest.(check (list (pair (float 0.) (float 0.))))
    "pairs in grid order"
    (List.map (fun x -> (x, x *. x)) pts)
    (P.sweep ~jobs:4 ~f:(fun x -> x *. x) pts)

let default_jobs_roundtrip () =
  let saved = P.default_jobs () in
  Fun.protect
    ~finally:(fun () -> P.set_default_jobs saved)
    (fun () ->
      P.set_default_jobs 3;
      Alcotest.(check int) "set" 3 (P.default_jobs ());
      P.set_default_jobs 0;
      Alcotest.(check int) "clamped to >= 1" 1 (P.default_jobs ()))

let nested_map_completes () =
  (* A map whose elements themselves map must not deadlock even when
     the outer batch occupies every pool worker. *)
  let inner x = P.map ~jobs:4 (fun y -> x + y) [ 1; 2; 3 ] in
  Alcotest.(check (list (list int)))
    "nested results"
    (List.map (fun x -> [ x + 1; x + 2; x + 3 ]) [ 10; 20; 30; 40 ])
    (P.map ~jobs:4 inner [ 10; 20; 30; 40 ])

(* The tentpole guarantee: the parallel replicated driver is a drop-in
   for Netsim.run_replicated — same seeds, same fold, bit-identical
   floats, at any job count. *)

let pipeline () =
  let svc t = G.service ~throughput:t () in
  let g = G.empty in
  let g, i = G.add_vertex ~kind:G.Ingress ~label:"in" ~service:(svc (25. *. U.gbps)) g in
  let g, w =
    G.add_vertex ~kind:G.Ip ~label:"ip"
      ~service:(G.service ~throughput:(4. *. U.gbps) ~queue_capacity:32 ())
      g
  in
  let g, e = G.add_vertex ~kind:G.Egress ~label:"out" ~service:(svc (25. *. U.gbps)) g in
  let g = G.add_edge ~delta:1. ~alpha:1. ~src:i ~dst:w g in
  let g = G.add_edge ~delta:1. ~alpha:1. ~src:w ~dst:e g in
  g

let hw = Lognic.Params.hardware ~bw_interface:(50. *. U.gbps) ~bw_memory:(60. *. U.gbps)

let replicated_bit_identical () =
  let g = pipeline () in
  let mix = [ (T.make ~rate:(2. *. U.gbps) ~packet_size:1500., 1.) ] in
  let config = S.Netsim.Config.(default |> with_horizon 0.02) in
  let sequential = S.Netsim.run_replicated ~config ~runs:4 g ~hw ~mix in
  List.iter
    (fun jobs ->
      let parallel = S.Parallel.run_replicated ~jobs ~config ~runs:4 g ~hw ~mix in
      Alcotest.(check bool)
        (Printf.sprintf "bit-identical at jobs:%d" jobs)
        true
        (sequential = parallel))
    [ 1; 2; 4 ];
  check_raises_invalid "needs >= 2 runs" (fun () ->
      ignore (S.Parallel.run_replicated ~jobs:4 ~runs:1 g ~hw ~mix))

let suite =
  [
    quick "map: matches List.map" map_matches_list_map;
    quick "map: first exception wins" map_propagates_first_exception;
    quick "sweep: tagged grid order" sweep_tags_points;
    quick "default jobs: set and clamp" default_jobs_roundtrip;
    quick "map: nested calls don't deadlock" nested_map_completes;
    quick "run_replicated: bit-identical to sequential" replicated_bit_identical;
  ]
