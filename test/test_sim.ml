(* Tests for the discrete-event simulator: primitives (event queue,
   engine, media, IP nodes), telemetry, and agreement between the
   simulator and the analytical model — the repo's central
   cross-validation. *)

open Helpers
module S = Lognic_sim
module G = Lognic.Graph
module U = Lognic.Units
module T = Lognic.Traffic
module N = Lognic_numerics

(* Event queue *)

let event_queue_orders_by_time () =
  let q = S.Event_queue.create () in
  List.iter (fun (t, v) -> S.Event_queue.push q ~time:t v) [ (3., "c"); (1., "a"); (2., "b") ];
  Alcotest.(check int) "size" 3 (S.Event_queue.size q);
  Alcotest.(check (option (float 0.))) "peek" (Some 1.) (S.Event_queue.peek_time q);
  let order = List.init 3 (fun _ -> snd (Option.get (S.Event_queue.pop q))) in
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] order;
  Alcotest.(check bool) "drained" true (S.Event_queue.is_empty q)

let event_queue_fifo_on_ties () =
  let q = S.Event_queue.create () in
  List.iter (fun v -> S.Event_queue.push q ~time:5. v) [ 1; 2; 3; 4 ];
  let order = List.init 4 (fun _ -> snd (Option.get (S.Event_queue.pop q))) in
  Alcotest.(check (list int)) "insertion order on equal times" [ 1; 2; 3; 4 ] order

let event_queue_interleaved () =
  let q = S.Event_queue.create () in
  (* push/pop interleaving across growth boundaries *)
  for i = 0 to 99 do
    S.Event_queue.push q ~time:(float_of_int (100 - i)) i
  done;
  let last = ref neg_infinity in
  let count = ref 0 in
  let rec drain () =
    match S.Event_queue.pop q with
    | None -> ()
    | Some (t, _) ->
      Alcotest.(check bool) "non-decreasing" true (t >= !last);
      last := t;
      incr count;
      drain ()
  in
  drain ();
  Alcotest.(check int) "all events" 100 !count

let event_queue_rejects_nan () =
  let q = S.Event_queue.create () in
  check_raises_invalid "nan time" (fun () -> S.Event_queue.push q ~time:Float.nan ())

let event_queue_pop_if_before () =
  let q = S.Event_queue.create () in
  List.iter (fun (t, v) -> S.Event_queue.push q ~time:t v) [ (1., "a"); (5., "b") ];
  Alcotest.(check (option (pair (float 0.) string)))
    "pops events within the horizon" (Some (1., "a"))
    (S.Event_queue.pop_if_before q ~horizon:3.);
  Alcotest.(check (option (pair (float 0.) string)))
    "leaves events past the horizon" None
    (S.Event_queue.pop_if_before q ~horizon:3.);
  Alcotest.(check int) "later event still queued" 1 (S.Event_queue.size q);
  Alcotest.(check (option (pair (float 0.) string)))
    "inclusive at the horizon" (Some (5., "b"))
    (S.Event_queue.pop_if_before q ~horizon:5.);
  Alcotest.(check (option (pair (float 0.) string)))
    "empty queue" None
    (S.Event_queue.pop_if_before q ~horizon:infinity)

(* Engine *)

let engine_runs_in_order () =
  let e = S.Engine.create () in
  let log = ref [] in
  S.Engine.schedule e ~at:2. (fun () -> log := "b" :: !log);
  S.Engine.schedule e ~at:1. (fun () ->
      log := "a" :: !log;
      (* events scheduled during execution still run *)
      S.Engine.schedule_after e ~delay:0.5 (fun () -> log := "a2" :: !log));
  S.Engine.run e;
  Alcotest.(check (list string)) "causal order" [ "a"; "a2"; "b" ] (List.rev !log);
  check_close "clock at last event" 2. (S.Engine.now e)

let engine_horizon () =
  let e = S.Engine.create () in
  let fired = ref false in
  S.Engine.schedule e ~at:10. (fun () -> fired := true);
  S.Engine.run ~until:5. e;
  Alcotest.(check bool) "future event not fired" false !fired;
  check_close "clock clamped to horizon" 5. (S.Engine.now e);
  Alcotest.(check int) "event still pending" 1 (S.Engine.pending e)

let engine_rejects_past () =
  let e = S.Engine.create () in
  S.Engine.schedule e ~at:3. (fun () -> ());
  S.Engine.run e;
  check_raises_invalid "past event" (fun () -> S.Engine.schedule e ~at:1. (fun () -> ()))

(* Medium *)

let medium_serializes () =
  let e = S.Engine.create () in
  let m = S.Medium.create e ~label:"bus" ~bandwidth:100. () in
  let done_at = ref [] in
  (* two 50-byte transfers at t=0 on a 100 B/s bus: finish at 0.5, 1.0 *)
  ignore (S.Medium.transfer m ~bytes:50. (fun () -> done_at := S.Engine.now e :: !done_at));
  ignore (S.Medium.transfer m ~bytes:50. (fun () -> done_at := S.Engine.now e :: !done_at));
  S.Engine.run e;
  Alcotest.(check (list (float 1e-9))) "FIFO serialization" [ 1.0; 0.5 ] !done_at;
  check_close "busy time" 1. (S.Medium.busy_time m);
  check_close "utilization" 1. (S.Medium.utilization m ~until:1.)

let medium_zero_bytes_passthrough () =
  let e = S.Engine.create () in
  let m = S.Medium.create e ~label:"bus" ~bandwidth:100. () in
  let fired = ref false in
  ignore (S.Medium.transfer m ~bytes:0. (fun () -> fired := true));
  Alcotest.(check bool) "immediate" true !fired;
  check_close "no busy time" 0. (S.Medium.busy_time m)

let medium_buffer_rejects () =
  let e = S.Engine.create () in
  let m = S.Medium.create e ~label:"bus" ~bandwidth:100. ~buffer:100. () in
  Alcotest.(check bool) "first accepted" true (S.Medium.transfer m ~bytes:80. ignore);
  Alcotest.(check bool) "overflow rejected" false (S.Medium.transfer m ~bytes:80. ignore);
  Alcotest.(check int) "rejection counted" 1 (S.Medium.rejections m);
  (* after draining there is room again *)
  S.Engine.run e;
  Alcotest.(check bool) "accepted after drain" true (S.Medium.transfer m ~bytes:80. ignore)

(* Ip_node *)

let node ?(engines = 1) ?(rate = 100.) ?(capacity = 4) ?(dist = S.Ip_node.Deterministic) e =
  S.Ip_node.create e
    ~rng:(N.Rng.create ~seed:1)
    ~label:"n" ~engines ~rate_per_engine:rate ~queue_capacity:capacity
    ~service_dist:dist

let ip_node_serves_fifo () =
  let e = S.Engine.create () in
  let n = node e in
  let completions = ref [] in
  for i = 1 to 3 do
    ignore (S.Ip_node.submit n ~work:100. (fun () -> completions := (i, S.Engine.now e) :: !completions))
  done;
  S.Engine.run e;
  Alcotest.(check (list (pair int (float 1e-9))))
    "sequential service" [ (3, 3.); (2, 2.); (1, 1.) ] !completions;
  Alcotest.(check int) "completions" 3 (S.Ip_node.completions n)

let ip_node_parallel_engines () =
  let e = S.Engine.create () in
  let n = node ~engines:2 e in
  let finished = ref [] in
  for _ = 1 to 2 do
    ignore (S.Ip_node.submit n ~work:100. (fun () -> finished := S.Engine.now e :: !finished))
  done;
  S.Engine.run e;
  Alcotest.(check (list (float 1e-9))) "both served concurrently" [ 1.; 1. ] !finished

let ip_node_drops_when_full () =
  let e = S.Engine.create () in
  let n = node ~capacity:2 e in
  Alcotest.(check bool) "1 in service" true (S.Ip_node.submit n ~work:100. ignore);
  Alcotest.(check bool) "1 queued" true (S.Ip_node.submit n ~work:100. ignore);
  Alcotest.(check bool) "3rd rejected" false (S.Ip_node.submit n ~work:100. ignore);
  Alcotest.(check int) "drop counted" 1 (S.Ip_node.drops n);
  Alcotest.(check int) "in system" 2 (S.Ip_node.in_system n)

let ip_node_zero_work_passthrough () =
  let e = S.Engine.create () in
  let n = node e in
  let fired = ref false in
  ignore (S.Ip_node.submit n ~work:0. (fun () -> fired := true));
  Alcotest.(check bool) "immediate" true !fired

let ip_node_zero_work_fifo () =
  (* The reordering bugfix: a zero-work request submitted while earlier
     work is queued must complete after it, not bypass the queue. *)
  let e = S.Engine.create () in
  let n = node e in
  let order = ref [] in
  ignore (S.Ip_node.submit n ~work:100. (fun () -> order := `Work1 :: !order));
  ignore (S.Ip_node.submit n ~work:100. (fun () -> order := `Work2 :: !order));
  ignore (S.Ip_node.submit n ~work:0. (fun () -> order := `Zero :: !order));
  S.Engine.run e;
  Alcotest.(check bool) "FIFO preserved" true
    (List.rev !order = [ `Work1; `Work2; `Zero ]);
  (* queued zero-work is subject to capacity like any request *)
  let n2 = node ~capacity:2 e in
  ignore (S.Ip_node.submit n2 ~work:100. ignore);
  ignore (S.Ip_node.submit n2 ~work:100. ignore);
  Alcotest.(check bool) "queued zero-work can drop" false
    (S.Ip_node.submit n2 ~work:0. ignore)

let ip_node_overload_utilization () =
  (* Busy-time clipping: a service in flight at the horizon must only
     contribute its pre-horizon share, so utilization stays <= 1. *)
  let e = S.Engine.create () in
  let n = node ~capacity:16 e in
  (* 10 x 1s services, horizon 2.5s: without clipping busy = 3s *)
  for _ = 1 to 10 do
    ignore (S.Ip_node.submit n ~work:100. ignore)
  done;
  S.Engine.run ~until:2.5 e;
  check_close "clipped busy" 2.5 (S.Ip_node.busy_within n ~until:2.5);
  check_close "utilization capped" 1. (S.Ip_node.utilization n ~until:2.5);
  Alcotest.(check bool) "never above 1" true
    (S.Ip_node.utilization n ~until:2.5 <= 1.)

let medium_overload_utilization () =
  let e = S.Engine.create () in
  let m = S.Medium.create e ~label:"bus" ~bandwidth:100. () in
  (* 3 x 1s transfers, horizon 2.5s: raw busy 3s, clipped 2.5s *)
  for _ = 1 to 3 do
    ignore (S.Medium.transfer m ~bytes:100. ignore)
  done;
  S.Engine.run ~until:2.5 e;
  check_close "raw busy keeps the full accrual" 3. (S.Medium.busy_time m);
  check_close "clipped busy" 2.5 (S.Medium.busy_within m ~until:2.5);
  check_close "utilization capped" 1. (S.Medium.utilization m ~until:2.5);
  check_close "backlog at horizon" 50. (S.Medium.backlog m)

let ip_node_matches_mm1n () =
  (* A single-engine exponential node under Poisson load is M/M/1/N;
     its measured drop rate must match the closed form. *)
  let e = S.Engine.create () in
  let rng = N.Rng.create ~seed:42 in
  let n = node ~capacity:4 ~dist:S.Ip_node.Exponential ~rate:100. e in
  let lambda = 0.9 and mu = 1. in
  (* work = 100 bytes at rate 100 B/s -> 1s mean service *)
  let offered = ref 0 in
  let horizon = 200_000. in
  let rec arrival () =
    let now = S.Engine.now e in
    if now < horizon then begin
      incr offered;
      ignore (S.Ip_node.submit n ~work:100. ignore);
      let gap = N.Dist.sample (N.Dist.exponential ~rate:lambda) rng in
      S.Engine.schedule e ~at:(now +. gap) arrival
    end
  in
  S.Engine.schedule e ~at:0.001 arrival;
  S.Engine.run ~until:horizon e;
  let measured_drop = float_of_int (S.Ip_node.drops n) /. float_of_int !offered in
  let predicted =
    Lognic_queueing.Mm1n.blocking_probability
      (Lognic_queueing.Mm1n.create ~lambda ~mu ~capacity:4)
  in
  check_within ~pct:5. "blocking matches closed form" predicted measured_drop

(* Telemetry *)

let site_ip0 = S.Telemetry.Node_queue { node = "ip"; queue = 0 }

let telemetry_windows () =
  let t = S.Telemetry.create ~warmup:10. in
  (* before warmup: ignored *)
  S.Telemetry.record_arrival t ~now:5. ~size:100.;
  S.Telemetry.record_completion t ~now:8. ~born:5. ~size:100. ~klass:0 ();
  (* after warmup *)
  S.Telemetry.record_arrival t ~now:11. ~size:100.;
  S.Telemetry.record_completion t ~now:12. ~born:11. ~size:100. ~klass:0 ();
  S.Telemetry.record_arrival t ~now:13. ~size:100.;
  S.Telemetry.record_drop t ~now:13. ~born:13. ~site:site_ip0;
  let s = S.Telemetry.summarize t ~horizon:20. in
  Alcotest.(check int) "offered in window" 2 s.offered_packets;
  Alcotest.(check int) "delivered in window" 1 s.delivered_packets;
  Alcotest.(check int) "dropped in window" 1 s.dropped_packets;
  check_close "window" 10. s.window;
  check_close "throughput" 10. s.throughput;
  check_close "mean latency" 1. s.mean_latency;
  check_close "loss rate" 0.5 s.loss_rate

let telemetry_drop_attribution () =
  (* The warmup bugfix: a packet born before the cutoff but dropped
     inside the window was counted as dropped-but-never-offered, letting
     loss_rate exceed 1. Drops are now windowed by birth time. *)
  let t = S.Telemetry.create ~warmup:10. in
  S.Telemetry.record_arrival t ~now:9. ~size:100.;  (* not offered *)
  S.Telemetry.record_drop t ~now:12. ~born:9. ~site:site_ip0;  (* not counted *)
  S.Telemetry.record_arrival t ~now:11. ~size:100.;
  S.Telemetry.record_drop t ~now:13. ~born:11. ~site:site_ip0;
  let s = S.Telemetry.summarize t ~horizon:20. in
  Alcotest.(check int) "pre-warmup birth excluded" 1 s.dropped_packets;
  Alcotest.(check bool) "loss rate consistent" true (s.loss_rate <= 1.);
  check_close "loss rate" 1. s.loss_rate;
  (* site attribution: the breakdown totals the aggregate counter *)
  let medium = S.Telemetry.Medium_buffer "interface" in
  S.Telemetry.record_arrival t ~now:14. ~size:100.;
  S.Telemetry.record_drop t ~now:14. ~born:14. ~site:medium;
  S.Telemetry.record_arrival t ~now:15. ~size:100.;
  S.Telemetry.record_drop t ~now:15. ~born:15. ~site:medium;
  let s = S.Telemetry.summarize t ~horizon:20. in
  Alcotest.(check int) "aggregate drops" 3 s.dropped_packets;
  Alcotest.(check int) "breakdown sums to aggregate" 3
    (List.fold_left (fun acc (_, n) -> acc + n) 0 s.drop_breakdown);
  (match s.drop_breakdown with
  | [ (m, 2); (n, 1) ] ->
    Alcotest.(check string) "largest site first" "medium:interface"
      (S.Telemetry.drop_site_name m);
    Alcotest.(check string) "node site name" "node:ip/q0"
      (S.Telemetry.drop_site_name n)
  | _ -> Alcotest.fail "drop breakdown shape")

let telemetry_latency_terms () =
  let t = S.Telemetry.create ~warmup:0. in
  let terms q s w o =
    { S.Telemetry.queueing = q; service = s; wire = w; overhead = o }
  in
  S.Telemetry.record_completion t ~now:10. ~born:0. ~terms:(terms 4. 3. 2. 1.)
    ~size:100. ~klass:0 ();
  S.Telemetry.record_completion t ~now:12. ~born:10. ~terms:(terms 0. 1. 1. 0.)
    ~size:100. ~klass:0 ();
  let s = S.Telemetry.summarize t ~horizon:20. in
  check_close "mean queueing" 2. s.latency_terms.queueing;
  check_close "mean service" 2. s.latency_terms.service;
  check_close "mean wire" 1.5 s.latency_terms.wire;
  check_close "mean overhead" 0.5 s.latency_terms.overhead;
  check_close "components sum to mean latency" s.mean_latency
    (S.Telemetry.terms_total s.latency_terms)

let telemetry_per_class () =
  let t = S.Telemetry.create ~warmup:0. in
  S.Telemetry.record_completion t ~now:1. ~born:0. ~size:64. ~klass:0 ();
  S.Telemetry.record_completion t ~now:3. ~born:0. ~size:1500. ~klass:1 ();
  S.Telemetry.record_completion t ~now:5. ~born:0. ~size:1500. ~klass:1 ();
  let s = S.Telemetry.summarize t ~horizon:10. in
  (match s.per_class with
  | [ (0, 1, l0); (1, 2, l1) ] ->
    check_close "class 0 latency" 1. l0;
    check_close "class 1 latency" 4. l1
  | _ -> Alcotest.fail "per-class breakdown")

(* Series ring buffers *)

let series_ring_overwrites () =
  let s =
    S.Telemetry.Series.create ~capacity:4 ~label:"depth" ~interval:1. ()
  in
  for i = 1 to 6 do
    S.Telemetry.Series.add s ~time:(float_of_int i) ~value:(float_of_int (10 * i))
  done;
  Alcotest.(check int) "bounded length" 4 (S.Telemetry.Series.length s);
  Alcotest.(check (array (pair (float 0.) (float 0.))))
    "newest samples win, chronological"
    [| (3., 30.); (4., 40.); (5., 50.); (6., 60.) |]
    (S.Telemetry.Series.to_array s);
  Alcotest.(check string) "label" "depth" (S.Telemetry.Series.label s);
  check_close "interval" 1. (S.Telemetry.Series.interval s);
  check_raises_invalid "bad capacity" (fun () ->
      S.Telemetry.Series.create ~capacity:0 ~label:"x" ~interval:1. ());
  check_raises_invalid "bad interval" (fun () ->
      S.Telemetry.Series.create ~label:"x" ~interval:0. ())

let series_csv () =
  let s = S.Telemetry.Series.create ~capacity:8 ~label:"q" ~interval:0.5 () in
  S.Telemetry.Series.add s ~time:0.5 ~value:2.;
  S.Telemetry.Series.add s ~time:1. ~value:3.;
  Alcotest.(check string) "csv" "time,q\n0.5,2\n1,3\n"
    (S.Telemetry.Series.to_csv s)

(* JSON round-trips *)

let json_gen =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        return S.Telemetry.Json.Null;
        map (fun b -> S.Telemetry.Json.Bool b) bool;
        (* finite floats only: JSON has no representation for nan/inf *)
        map (fun x -> S.Telemetry.Json.Num x) (float_bound_inclusive 1e6);
        map (fun i -> S.Telemetry.Json.Num (float_of_int i)) (int_range (-1000) 1000);
        map (fun s -> S.Telemetry.Json.Str s) (string_size ~gen:printable (int_range 0 12));
      ]
  in
  let rec value depth =
    if depth = 0 then scalar
    else
      frequency
        [
          (3, scalar);
          (1, map (fun xs -> S.Telemetry.Json.Arr xs)
                (list_size (int_range 0 4) (value (depth - 1))));
          ( 1,
            map (fun kvs -> S.Telemetry.Json.Obj kvs)
              (list_size (int_range 0 4)
                 (pair (string_size ~gen:printable (int_range 1 8))
                    (value (depth - 1)))) );
        ]
  in
  value 3

let json_roundtrip_prop =
  prop "JSON print/parse round-trips" ~count:300
    (QCheck.make json_gen)
    (fun v ->
      match S.Telemetry.Json.of_string (S.Telemetry.Json.to_string v) with
      | Ok v' -> v = v'
      | Error _ -> false)

let summary_json_roundtrip () =
  let t = S.Telemetry.create ~warmup:0. in
  S.Telemetry.record_arrival t ~now:1. ~size:100.;
  S.Telemetry.record_completion t ~now:2. ~born:1.
    ~terms:{ S.Telemetry.queueing = 0.5; service = 0.3; wire = 0.2; overhead = 0. }
    ~size:100. ~klass:0 ();
  S.Telemetry.record_arrival t ~now:3. ~size:100.;
  S.Telemetry.record_drop t ~now:3. ~born:3. ~site:site_ip0;
  let s = S.Telemetry.summarize t ~horizon:10. in
  let json = S.Telemetry.to_json s in
  match S.Telemetry.Json.of_string (S.Telemetry.Json.to_string json) with
  | Error e -> Alcotest.failf "summary JSON does not parse back: %s" e
  | Ok parsed ->
    Alcotest.(check bool) "round-trips structurally" true (parsed = json);
    (match S.Telemetry.Json.member "dropped_packets" parsed with
    | Some (S.Telemetry.Json.Num n) -> check_close "dropped" 1. n
    | _ -> Alcotest.fail "dropped_packets missing");
    (match S.Telemetry.Json.member "drop_breakdown" parsed with
    | Some (S.Telemetry.Json.Arr [ site ]) ->
      (match S.Telemetry.Json.member "site" site with
      | Some (S.Telemetry.Json.Str name) ->
        Alcotest.(check string) "site key" "node:ip/q0" name
      | _ -> Alcotest.fail "site missing")
    | _ -> Alcotest.fail "drop_breakdown missing")

(* Netsim: end-to-end *)

let hw = Lognic.Params.hardware ~bw_interface:(50. *. U.gbps) ~bw_memory:(60. *. U.gbps)

let pipeline ?(queue = 32) ?(ip_rate = 4. *. U.gbps) () =
  let svc t = G.service ~throughput:t () in
  let g = G.empty in
  let g, i = G.add_vertex ~kind:G.Ingress ~label:"in" ~service:(svc (25. *. U.gbps)) g in
  let g, w =
    G.add_vertex ~kind:G.Ip ~label:"ip"
      ~service:(G.service ~throughput:ip_rate ~queue_capacity:queue ())
      g
  in
  let g, e = G.add_vertex ~kind:G.Egress ~label:"out" ~service:(svc (25. *. U.gbps)) g in
  let g = G.add_edge ~delta:1. ~alpha:1. ~src:i ~dst:w g in
  let g = G.add_edge ~delta:1. ~alpha:1. ~src:w ~dst:e g in
  g

let netsim_conservation () =
  let g = pipeline () in
  let traffic = T.make ~rate:(3.9 *. U.gbps) ~packet_size:1500. in
  let m = S.Netsim.run_single g ~hw ~traffic in
  let s = m.summary in
  (* every offered packet is delivered, dropped, or still in flight *)
  Alcotest.(check bool)
    "conservation" true
    (s.offered_packets >= s.delivered_packets + s.dropped_packets);
  let in_flight = s.offered_packets - s.delivered_packets - s.dropped_packets in
  Alcotest.(check bool) "small in-flight residue" true (in_flight < 200)

let netsim_deterministic () =
  let g = pipeline () in
  let traffic = T.make ~rate:(2. *. U.gbps) ~packet_size:1500. in
  let run () =
    (S.Netsim.run_single g ~hw ~traffic).summary.S.Telemetry.mean_latency
  in
  check_close "same seed, same result" (run ()) (run ())

let netsim_seed_matters () =
  let g = pipeline () in
  let traffic = T.make ~rate:(2. *. U.gbps) ~packet_size:1500. in
  let with_seed seed =
    (S.Netsim.run_single
       ~config:S.Netsim.Config.(default |> with_seed seed)
       g ~hw ~traffic)
      .summary.S.Telemetry.mean_latency
  in
  Alcotest.(check bool) "different seeds differ" true (with_seed 1 <> with_seed 2)

let netsim_matches_model_throughput () =
  let g = pipeline () in
  List.iter
    (fun load ->
      let traffic = T.make ~rate:(load *. 4. *. U.gbps) ~packet_size:1500. in
      let model = Lognic.Latency.evaluate g ~hw ~traffic in
      let m =
        S.Netsim.run_single
          ~config:S.Netsim.Config.(default |> with_horizon ~warmup:0.05 0.3)
          g ~hw ~traffic
      in
      check_within ~pct:3.
        (Printf.sprintf "throughput at %g load" load)
        model.Lognic.Latency.carried_rate m.summary.S.Telemetry.throughput)
    [ 0.5; 0.9; 1.2 ]

let netsim_matches_model_latency () =
  let g = pipeline () in
  List.iter
    (fun load ->
      let traffic = T.make ~rate:(load *. 4. *. U.gbps) ~packet_size:1500. in
      let model = Lognic.Latency.evaluate g ~hw ~traffic in
      let m =
        S.Netsim.run_single
          ~config:S.Netsim.Config.(default |> with_horizon ~warmup:0.05 0.3)
          g ~hw ~traffic
      in
      check_within ~pct:6.
        (Printf.sprintf "latency at %g load" load)
        model.Lognic.Latency.mean m.summary.S.Telemetry.mean_latency)
    [ 0.5; 0.8; 0.95 ]

let netsim_multiengine_matches_mmcn () =
  (* a 4-engine IP: Eq 12 overestimates, Mmcn_model matches *)
  let g = G.empty in
  let svc t = G.service ~throughput:t () in
  let g, i = G.add_vertex ~kind:G.Ingress ~label:"in" ~service:(svc (25. *. U.gbps)) g in
  let g, w =
    G.add_vertex ~kind:G.Ip ~label:"ip"
      ~service:(G.service ~throughput:(4. *. U.gbps) ~parallelism:4 ~queue_capacity:32 ())
      g
  in
  let g, e = G.add_vertex ~kind:G.Egress ~label:"out" ~service:(svc (25. *. U.gbps)) g in
  let g = G.add_edge ~delta:1. ~src:i ~dst:w g in
  let g = G.add_edge ~delta:1. ~src:w ~dst:e g in
  let traffic = T.make ~rate:(3.4 *. U.gbps) ~packet_size:1500. in
  let m =
    S.Netsim.run_single
      ~config:S.Netsim.Config.(default |> with_horizon ~warmup:0.05 0.3)
      g ~hw ~traffic
  in
  let mmcn = Lognic.Latency.evaluate ~model:Lognic.Latency.Mmcn_model g ~hw ~traffic in
  let mm1n = Lognic.Latency.evaluate g ~hw ~traffic in
  check_within ~pct:8. "exact multi-server model tracks the simulator"
    mmcn.Lognic.Latency.mean m.summary.S.Telemetry.mean_latency;
  Alcotest.(check bool)
    "Eq 12 overestimates multi-engine queueing" true
    (mm1n.Lognic.Latency.mean > 1.5 *. m.summary.S.Telemetry.mean_latency)

let netsim_drops_under_overload () =
  let g = pipeline ~queue:4 () in
  let traffic = T.make ~rate:(8. *. U.gbps) ~packet_size:1500. in
  let m = S.Netsim.run_single g ~hw ~traffic in
  Alcotest.(check bool) "loss observed" true (m.summary.S.Telemetry.loss_rate > 0.2);
  let model = Lognic.Latency.evaluate g ~hw ~traffic in
  check_within ~pct:6. "goodput matches blocking model"
    model.Lognic.Latency.carried_rate m.summary.S.Telemetry.throughput

let netsim_fanout_routing () =
  (* 70/30 split: delivered per-class packet shares track the deltas *)
  let svc t = G.service ~throughput:t () in
  let g = G.empty in
  let g, i = G.add_vertex ~kind:G.Ingress ~label:"in" ~service:(svc (25. *. U.gbps)) g in
  let g, x = G.add_vertex ~kind:G.Ip ~label:"x" ~service:(svc (20. *. U.gbps)) g in
  let g, y = G.add_vertex ~kind:G.Ip ~label:"y" ~service:(svc (20. *. U.gbps)) g in
  let g, e = G.add_vertex ~kind:G.Egress ~label:"out" ~service:(svc (25. *. U.gbps)) g in
  let g = G.add_edge ~delta:0.7 ~src:i ~dst:x g in
  let g = G.add_edge ~delta:0.3 ~src:i ~dst:y g in
  let g = G.add_edge ~delta:0.7 ~src:x ~dst:e g in
  let g = G.add_edge ~delta:0.3 ~src:y ~dst:e g in
  let traffic = T.make ~rate:(5. *. U.gbps) ~packet_size:1500. in
  let m = S.Netsim.run_single g ~hw ~traffic in
  let stats_for label =
    List.find (fun (v : S.Netsim.vertex_stats) -> v.vlabel = label) m.vertex_stats
  in
  let cx = float_of_int (stats_for "x").completions in
  let cy = float_of_int (stats_for "y").completions in
  check_within ~pct:5. "70/30 routing" (7. /. 3.) (cx /. cy)

let netsim_mix_classes () =
  let g = pipeline ~ip_rate:(20. *. U.gbps) () in
  let mix =
    T.mix
      [
        (T.make ~rate:(1. *. U.gbps) ~packet_size:64., 1.);
        (T.make ~rate:(4. *. U.gbps) ~packet_size:1500., 1.);
      ]
  in
  let m = S.Netsim.run g ~hw ~mix in
  Alcotest.(check int) "two classes measured" 2
    (List.length m.summary.S.Telemetry.per_class);
  (* 64B class has ~5x the packet rate of the 1500B class:
     1G/64 ~ 1.95Mpps vs 4G/1500 ~ 0.33Mpps *)
  (match m.summary.S.Telemetry.per_class with
  | [ (0, n0, _); (1, n1, _) ] ->
    check_within ~pct:10. "class packet ratio" 5.86
      (float_of_int n0 /. float_of_int n1)
  | _ -> Alcotest.fail "per-class")

let netsim_utilization_matches_model () =
  (* the simulator's measured engine utilization must track the model's
     rho at sub-saturation loads *)
  let g = pipeline () in
  List.iter
    (fun load ->
      let traffic = T.make ~rate:(load *. 4. *. U.gbps) ~packet_size:1500. in
      let m =
        S.Netsim.run_single
          ~config:S.Netsim.Config.(default |> with_horizon 0.2)
          g ~hw ~traffic
      in
      let ip_stats =
        List.find (fun (v : S.Netsim.vertex_stats) -> v.vlabel = "ip") m.vertex_stats
      in
      let model =
        List.find
          (fun (t : Lognic.Latency.vertex_terms) -> t.vid = ip_stats.vid)
          (Lognic.Latency.evaluate g ~hw ~traffic).per_vertex
      in
      check_within ~pct:4.
        (Printf.sprintf "utilization at load %g" load)
        model.Lognic.Latency.utilization ip_stats.utilization)
    [ 0.3; 0.6; 0.9 ]

let netsim_medium_sheds_load () =
  (* a graph whose interface is hugely oversubscribed: the medium's
     bounded buffer sheds load, goodput settles at the interface cap *)
  let tight_hw =
    Lognic.Params.hardware ~bw_interface:(1. *. U.gbps) ~bw_memory:(60. *. U.gbps)
  in
  let g = pipeline ~ip_rate:(20. *. U.gbps) () in
  let traffic = T.make ~rate:(5. *. U.gbps) ~packet_size:1500. in
  let m =
    S.Netsim.run_single
      ~config:S.Netsim.Config.(default |> with_horizon ~warmup:0.05 0.2)
      g ~hw:tight_hw ~traffic
  in
  (* two alpha=1 edges share the 1G interface. The analytic ceiling is
     0.5G; the simulator delivers ~0.25G because packets dropped at the
     second crossing already burned first-crossing bandwidth — wasted
     work under uncoordinated admission that the model's
     work-conserving Eq 2 cannot see. Both bounds are asserted. *)
  Alcotest.(check bool)
    "goodput between the wasted-work floor and the analytic ceiling" true
    (m.summary.S.Telemetry.throughput > 0.2 *. U.gbps
    && m.summary.S.Telemetry.throughput < 0.5 *. U.gbps);
  Alcotest.(check bool) "drops counted" true (m.summary.S.Telemetry.loss_rate > 0.5);
  (* bounded buffer keeps latency finite and modest *)
  Alcotest.(check bool)
    "latency bounded by the medium buffer" true
    (m.summary.S.Telemetry.max_latency < 0.05)

let netsim_replicated () =
  let g = pipeline () in
  let traffic = T.make ~rate:(2. *. U.gbps) ~packet_size:1500. in
  let r =
    S.Netsim.run_replicated
      ~config:S.Netsim.Config.(default |> with_horizon 0.05)
      ~runs:4 g ~hw ~mix:[ (traffic, 1.) ]
  in
  Alcotest.(check int) "runs" 4 r.S.Netsim.runs;
  check_within ~pct:3. "mean throughput near offered" (2. *. U.gbps)
    r.S.Netsim.throughput_mean;
  Alcotest.(check bool)
    "across-seed variance is small but nonzero" true
    (r.S.Netsim.latency_stddev > 0.
    && r.S.Netsim.latency_stddev < 0.2 *. r.S.Netsim.latency_mean);
  check_raises_invalid "needs >= 2 runs" (fun () ->
      ignore
        (S.Netsim.run_replicated ~runs:1 g ~hw ~mix:[ (traffic, 1.) ]))

let netsim_overload_observability () =
  (* Acceptance regression: under heavy overload every entity's
     utilization stays <= 1 (horizon clipping), loss_rate <= 1 (birth
     windowed drops), and the drop breakdown accounts for every drop. *)
  let g = pipeline ~queue:4 () in
  let traffic = T.make ~rate:(20. *. U.gbps) ~packet_size:1500. in
  let m = S.Netsim.run_single g ~hw ~traffic in
  let s = m.summary in
  Alcotest.(check bool) "overloaded" true (s.S.Telemetry.loss_rate > 0.5);
  Alcotest.(check bool) "loss rate <= 1" true (s.S.Telemetry.loss_rate <= 1.);
  List.iter
    (fun (v : S.Netsim.vertex_stats) ->
      Alcotest.(check bool)
        (Printf.sprintf "node %s utilization <= 1" v.vlabel)
        true
        (v.utilization >= 0. && v.utilization <= 1. +. 1e-9);
      Alcotest.(check int)
        (Printf.sprintf "node %s queue split sums" v.vlabel)
        v.drops
        (Array.fold_left ( + ) 0 v.queue_drops))
    m.vertex_stats;
  Alcotest.(check bool) "all media reported" true (List.length m.medium_stats >= 2);
  List.iter
    (fun (md : S.Netsim.medium_stats) ->
      Alcotest.(check bool)
        (Printf.sprintf "medium %s utilization <= 1" md.mlabel)
        true
        (md.m_utilization >= 0. && md.m_utilization <= 1. +. 1e-9))
    m.medium_stats;
  Alcotest.(check int) "breakdown sums to total drops" s.S.Telemetry.dropped_packets
    (List.fold_left (fun acc (_, n) -> acc + n) 0 m.drop_breakdown);
  (* the bottleneck IP queue must appear as a drop site *)
  Alcotest.(check bool) "ip queue attributed" true
    (List.exists
       (fun (site, n) ->
         n > 0 && S.Telemetry.drop_site_name site = "node:ip/q0")
       m.drop_breakdown)

let netsim_latency_decomposition () =
  (* Per-hop latency contributions must sum to end-to-end latency. *)
  List.iter
    (fun load ->
      let g = pipeline () in
      let traffic = T.make ~rate:(load *. 4. *. U.gbps) ~packet_size:1500. in
      let m = S.Netsim.run_single g ~hw ~traffic in
      let s = m.summary in
      let terms = s.S.Telemetry.latency_terms in
      check_close ~tol:1e-9
        (Printf.sprintf "components sum to mean latency at load %g" load)
        s.S.Telemetry.mean_latency
        (S.Telemetry.terms_total terms);
      Alcotest.(check bool) "all components non-negative" true
        (terms.queueing >= 0. && terms.service >= 0. && terms.wire >= 0.
        && terms.overhead >= 0.);
      Alcotest.(check bool) "service and wire observed" true
        (terms.service > 0. && terms.wire > 0.))
    [ 0.5; 0.9 ]

let netsim_sampling () =
  let g = pipeline () in
  let traffic = T.make ~rate:(2. *. U.gbps) ~packet_size:1500. in
  let dt = 1e-3 in
  let config = S.Netsim.Config.(default |> with_sampling dt) in
  let m = S.Netsim.run_single ~config g ~hw ~traffic in
  Alcotest.(check bool) "series present" true (List.length m.series > 0);
  (* per node: depth + busy; per medium: backlog *)
  Alcotest.(check int) "one series per probe"
    ((2 * List.length m.vertex_stats) + List.length m.medium_stats)
    (List.length m.series);
  let expected_samples =
    int_of_float (S.Netsim.default_config.duration /. dt)
  in
  List.iter
    (fun series ->
      let samples = S.Telemetry.Series.to_array series in
      Alcotest.(check int)
        (Printf.sprintf "series %s respects the interval"
           (S.Telemetry.Series.label series))
        expected_samples (Array.length samples);
      Array.iteri
        (fun i (t, _) ->
          check_close
            (Printf.sprintf "sample %d time" i)
            (float_of_int (i + 1) *. dt)
            t)
        samples)
    m.series;
  (* sampling is read-only: results identical with and without *)
  let plain = S.Netsim.run_single g ~hw ~traffic in
  check_close "sampling does not perturb the simulation"
    plain.summary.S.Telemetry.mean_latency m.summary.S.Telemetry.mean_latency;
  (* measurement JSON parses back *)
  let str = S.Telemetry.Json.to_string (S.Netsim.measurement_to_json m) in
  (match S.Telemetry.Json.of_string str with
  | Ok (S.Telemetry.Json.Obj _) -> ()
  | Ok _ -> Alcotest.fail "measurement JSON is not an object"
  | Error e -> Alcotest.failf "measurement JSON does not parse: %s" e)

let netsim_replicated_entities () =
  let g = pipeline () in
  let traffic = T.make ~rate:(2. *. U.gbps) ~packet_size:1500. in
  let r =
    S.Netsim.run_replicated
      ~config:S.Netsim.Config.(default |> with_horizon 0.05)
      ~runs:3 g ~hw ~mix:[ (traffic, 1.) ]
  in
  Alcotest.(check bool) "per-entity stats present" true
    (List.length r.S.Netsim.entities >= 5);
  let ip =
    List.find
      (fun (e : S.Netsim.entity_replicated) -> e.entity = "ip")
      r.S.Netsim.entities
  in
  Alcotest.(check bool) "ip utilization sensible" true
    (ip.utilization_mean > 0. && ip.utilization_mean <= 1.)

let netsim_rejects_invalid_graph () =
  let g = G.empty in
  let g, _ = G.add_vertex ~kind:G.Ip ~label:"x" ~service:G.default_service g in
  check_raises_invalid "invalid graph" (fun () ->
      S.Netsim.run_single g ~hw ~traffic:(T.make ~rate:1e9 ~packet_size:1500.))

let properties =
  [
    prop "event queue pops in sorted order, FIFO on ties"
      (* Small integer times force many ties, exercising the seq
         tiebreak; indexed payloads make the expected order exact. *)
      QCheck.(list_of_size (Gen.int_range 1 100) (int_range 0 10))
      (fun times ->
        let q = S.Event_queue.create () in
        let entries = List.mapi (fun i t -> (float_of_int t, i)) times in
        List.iter (fun (t, i) -> S.Event_queue.push q ~time:t i) entries;
        let rec drain acc =
          match S.Event_queue.pop q with
          | None -> List.rev acc
          | Some entry -> drain (entry :: acc)
        in
        let expected =
          (* stable sort by time = time order with push order on ties *)
          List.stable_sort (fun (a, _) (b, _) -> Float.compare a b) entries
        in
        drain [] = expected);
    prop "sim throughput never exceeds offered load"
      QCheck.(pair (float_range 0.2 3.) small_int)
      (fun (load, seed) ->
        let g = pipeline () in
        let rate = load *. 4. *. U.gbps in
        let traffic = T.make ~rate ~packet_size:1500. in
        let m =
          S.Netsim.run_single
            ~config:
              S.Netsim.Config.(default |> with_horizon 0.02 |> with_seed seed)
            g ~hw ~traffic
        in
        m.summary.S.Telemetry.throughput <= rate *. 1.1);
  ]

let suite =
  [
    quick "event queue: time order" event_queue_orders_by_time;
    quick "event queue: FIFO ties" event_queue_fifo_on_ties;
    quick "event queue: interleaved growth" event_queue_interleaved;
    quick "event queue: rejects NaN" event_queue_rejects_nan;
    quick "engine: causal order" engine_runs_in_order;
    quick "engine: horizon" engine_horizon;
    quick "engine: rejects past events" engine_rejects_past;
    quick "medium: FIFO serialization" medium_serializes;
    quick "medium: zero-byte passthrough" medium_zero_bytes_passthrough;
    quick "medium: bounded buffer" medium_buffer_rejects;
    quick "ip node: sequential service" ip_node_serves_fifo;
    quick "ip node: parallel engines" ip_node_parallel_engines;
    quick "ip node: drops when full" ip_node_drops_when_full;
    quick "ip node: zero-work passthrough" ip_node_zero_work_passthrough;
    quick "ip node: zero-work FIFO under load" ip_node_zero_work_fifo;
    quick "ip node: overload utilization <= 1" ip_node_overload_utilization;
    quick "medium: overload utilization <= 1" medium_overload_utilization;
    slow "ip node: M/M/1/N blocking" ip_node_matches_mm1n;
    quick "telemetry: warmup windows" telemetry_windows;
    quick "telemetry: drop attribution" telemetry_drop_attribution;
    quick "telemetry: latency decomposition" telemetry_latency_terms;
    quick "telemetry: per-class" telemetry_per_class;
    quick "telemetry: series ring buffer" series_ring_overwrites;
    quick "telemetry: series CSV" series_csv;
    quick "telemetry: summary JSON round-trip" summary_json_roundtrip;
    quick "netsim: conservation" netsim_conservation;
    quick "netsim: deterministic" netsim_deterministic;
    quick "netsim: seed sensitivity" netsim_seed_matters;
    slow "netsim: throughput matches model" netsim_matches_model_throughput;
    slow "netsim: latency matches model" netsim_matches_model_latency;
    slow "netsim: multi-engine needs Mmcn" netsim_multiengine_matches_mmcn;
    quick "netsim: overload goodput" netsim_drops_under_overload;
    quick "netsim: fan-out routing" netsim_fanout_routing;
    quick "netsim: traffic mixes" netsim_mix_classes;
    slow "netsim: utilization matches model" netsim_utilization_matches_model;
    quick "netsim: oversubscribed medium sheds load" netsim_medium_sheds_load;
    quick "netsim: overload observability" netsim_overload_observability;
    quick "netsim: latency decomposition" netsim_latency_decomposition;
    quick "netsim: sampled series" netsim_sampling;
    quick "netsim: replicated runs" netsim_replicated;
    quick "netsim: replicated per-entity stats" netsim_replicated_entities;
    quick "netsim: rejects invalid graphs" netsim_rejects_invalid_graph;
  ]
  @ properties
  @ [ json_roundtrip_prop ]
