(* Tests for the graph DSL: quantities, parsing, errors, round trips. *)

open Helpers
module Q = Lognic_dsl.Quantity
module P = Lognic_dsl.Parser
module G = Lognic.Graph

let parse_q s =
  match Q.parse s with Ok v -> v | Error e -> Alcotest.failf "parse %S: %s" s e

let quantity_rates () =
  check_close "Gbps" 3.125e9 (parse_q "25Gbps");
  check_close "Mbps" 1.25e6 (parse_q "10Mbps");
  check_close "bps" 1. (parse_q "8bps");
  check_close "GB/s" 2e9 (parse_q "2GB/s");
  check_close "MB/s" 5e8 (parse_q "500MB/s")

let quantity_sizes_times_ops () =
  check_close "B" 1500. (parse_q "1500B");
  check_close "KB" 4000. (parse_q "4KB");
  check_close "KiB" 4096. (parse_q "4KiB");
  check_close "MiB" (4. *. 1024. *. 1024.) (parse_q "4MiB");
  check_close "us" 2.5e-6 (parse_q "2.5us");
  check_close "ns" 5e-9 (parse_q "5ns");
  check_close "ms" 1e-3 (parse_q "1ms");
  check_close "s" 3. (parse_q "3s");
  check_close "Mops" 2e6 (parse_q "2Mops")

let quantity_bare_and_bad () =
  check_close "bare number" 42. (parse_q "42");
  check_close "scientific" 2.5e9 (parse_q "2.5e9");
  Alcotest.(check bool) "garbage" true (Result.is_error (Q.parse "fast"));
  Alcotest.(check bool) "empty" true (Result.is_error (Q.parse ""));
  Alcotest.(check bool) "suffix only" true (Result.is_error (Q.parse "Gbps"))

let quantity_printers () =
  Alcotest.(check string) "rate" "25Gbps" (Q.print_rate 3.125e9);
  Alcotest.(check string) "size" "4KiB" (Q.print_size 4096.);
  Alcotest.(check string) "time" "5us" (Q.print_time 5e-6)

let quantity_whitespace () =
  (* a space (or tab) between magnitude and unit is legal *)
  check_close "spaced Gbps" 1.25e9 (parse_q "10 Gbps");
  check_close "tabbed B" 1500. (parse_q "1500\tB");
  check_close "two spaces" 2.5e-6 (parse_q "2.5  us");
  check_close "surrounding blanks" 1.25e9 (parse_q "  10 Gbps  ");
  Alcotest.(check bool) "space inside the number is still bad" true
    (Result.is_error (Q.parse "1 0Gbps"))

let quantity_print_parse_round_trip () =
  (* print_* must emit strings parse maps back to the same float *)
  let roundtrip print what v = check_close ~tol:1e-12 what v (parse_q (print v)) in
  List.iter
    (fun v -> roundtrip Q.print_rate (Printf.sprintf "rate %g" v) v)
    [ 1.25e9; 3.125e9; 2e9; 1e6; 42.; 2.7e9 ];
  List.iter
    (fun v -> roundtrip Q.print_size (Printf.sprintf "size %g" v) v)
    [ 64.; 1500.; 4096.; 4000.; 1048576. ];
  List.iter
    (fun v -> roundtrip Q.print_time (Printf.sprintf "time %g" v) v)
    [ 5e-6; 1e-9; 2.5e-6; 1e-3; 3. ]

let sample_graph =
  {|
# A SmartNIC echo server
hardware interface=40Gbps memory=50Gbps
vertex rx ingress throughput=25Gbps queue=128
vertex cores ip throughput=6Gbps parallelism=8 queue=64 overhead=1us partition=0.5
vertex md5 ip throughput=21.6Gbps queue=32
vertex tx egress throughput=25Gbps
edge rx -> cores delta=1.0
edge cores -> md5 delta=1.0 beta=1.0
edge md5 -> tx delta=1.0 bandwidth=30Gbps
traffic rate=4Gbps packet=1500B
|}

let parse_ok text =
  match P.parse_string text with
  | Ok doc -> doc
  | Error e -> Alcotest.failf "unexpected parse error: %s" e

let parser_full_document () =
  let doc = parse_ok sample_graph in
  Alcotest.(check int) "vertices" 4 (G.vertex_count doc.graph);
  Alcotest.(check int) "edges" 3 (List.length (G.edges doc.graph));
  Alcotest.(check bool) "valid graph" true (Result.is_ok (G.validate doc.graph));
  (match doc.hardware with
  | Some hw -> check_close "interface" (40. *. Lognic.Units.gbps) hw.bw_interface
  | None -> Alcotest.fail "hardware missing");
  (match doc.traffic with
  | Some t ->
    check_close "rate" (4. *. Lognic.Units.gbps) t.rate;
    check_close "packet" 1500. t.packet_size
  | None -> Alcotest.fail "traffic missing");
  let cores = Option.get (P.vertex_id doc "cores") in
  let v = G.vertex doc.graph cores in
  Alcotest.(check int) "parallelism" 8 v.service.parallelism;
  check_close "partition" 0.5 v.service.partition;
  check_close "overhead" 1e-6 v.service.overhead;
  let e = Option.get (G.edge doc.graph ~src:cores ~dst:(Option.get (P.vertex_id doc "md5"))) in
  check_close "beta" 1. e.beta;
  Alcotest.(check bool) "vertex_id misses" true (P.vertex_id doc "nope" = None)

let parser_defaults () =
  let doc = parse_ok "vertex a ingress\nvertex b egress\nedge a -> b" in
  let a = G.vertex doc.graph 0 in
  Alcotest.(check bool) "unbounded throughput" true (a.service.throughput = infinity);
  let e = List.hd (G.edges doc.graph) in
  check_close "delta default" 1. e.delta;
  check_close "alpha default" 0. e.alpha;
  Alcotest.(check bool) "no hardware" true (doc.hardware = None)

let parser_comments_and_blanks () =
  let doc =
    parse_ok "\n# comment only\nvertex a ingress # trailing\n\nvertex b egress\nedge a -> b\n"
  in
  Alcotest.(check int) "two vertices" 2 (G.vertex_count doc.graph)

let expect_error fragment text =
  match P.parse_string text with
  | Ok _ -> Alcotest.failf "expected error mentioning %S" fragment
  | Error e ->
    Alcotest.(check bool)
      (Printf.sprintf "error %S mentions %S" e fragment)
      true
      (contains_substring e fragment)

let parser_errors () =
  expect_error "unknown statement" "link a -> b";
  expect_error "kind" "vertex a superscalar";
  expect_error "duplicate vertex" "vertex a ingress\nvertex a egress";
  expect_error "unknown vertex" "vertex a ingress\nedge a -> ghost";
  expect_error "key=value" "vertex a ingress bogus";
  expect_error "unknown vertex attribute" "vertex a ingress color=red";
  expect_error "edge syntax" "vertex a ingress\nedge a b";
  expect_error "line 3" "vertex a ingress\nvertex b egress\nedge a -> b delta=wat";
  expect_error "interface" "hardware memory=1Gbps";
  expect_error "rate" "traffic packet=64B"

let parser_rejects_bad_service () =
  expect_error "partition" "vertex a ip throughput=1Gbps partition=2.0"

let roundtrip () =
  let doc = parse_ok sample_graph in
  let printed = Lognic_dsl.Printer.document_to_string doc in
  let doc2 = parse_ok printed in
  Alcotest.(check int) "vertices preserved" (G.vertex_count doc.graph)
    (G.vertex_count doc2.graph);
  Alcotest.(check int) "edges preserved"
    (List.length (G.edges doc.graph))
    (List.length (G.edges doc2.graph));
  (* semantic equality of throughput estimates *)
  let hw = Option.get doc.hardware and traffic = Option.get doc.traffic in
  let hw2 = Option.get doc2.hardware and traffic2 = Option.get doc2.traffic in
  let r1 = Lognic.Estimate.run doc.graph ~hw ~traffic in
  let r2 = Lognic.Estimate.run doc2.graph ~hw:hw2 ~traffic:traffic2 in
  check_close "attained preserved" r1.throughput.Lognic.Throughput.attained
    r2.throughput.Lognic.Throughput.attained;
  check_close "latency preserved" r1.latency.Lognic.Latency.mean
    r2.latency.Lognic.Latency.mean

let parse_file_missing () =
  Alcotest.(check bool)
    "missing file is an error" true
    (Result.is_error (P.parse_file "/nonexistent/graph.lognic"))

let parser_traffic_mix () =
  let doc =
    parse_ok
      (sample_graph
      ^ "class rate=1Gbps packet=64B weight=1\nclass rate=3Gbps packet=1500B weight=3\n")
  in
  (match doc.mix with
  | Some classes ->
    Alcotest.(check int) "two classes" 2 (List.length classes);
    check_close "total rate" (4. *. Lognic.Units.gbps)
      (Lognic.Traffic.total_rate classes);
    let normalized = Lognic.Traffic.normalize_weights classes in
    check_close "weight normalization" 0.25 (snd (List.hd normalized))
  | None -> Alcotest.fail "mix missing");
  (* no class lines -> no mix *)
  Alcotest.(check bool) "no classes, no mix" true ((parse_ok sample_graph).mix = None);
  expect_error "class" "class rate=1Gbps";
  expect_error "rate" "class packet=64B"

let mix_roundtrip () =
  let text =
    sample_graph ^ "class rate=1Gbps packet=64B weight=2\n"
  in
  let doc = parse_ok text in
  let doc2 = parse_ok (Lognic_dsl.Printer.document_to_string doc) in
  match (doc.mix, doc2.mix) with
  | Some m1, Some m2 ->
    check_close "mix rate preserved" (Lognic.Traffic.total_rate m1)
      (Lognic.Traffic.total_rate m2)
  | _ -> Alcotest.fail "mix lost in round trip"

let properties =
  [
    prop "quantity parse of printed rates"
      QCheck.(float_range 1. 400.)
      (fun gbps ->
        match Q.parse (Printf.sprintf "%.6gGbps" gbps) with
        | Ok v -> abs_float (v -. (gbps *. Lognic.Units.gbps)) < 1e-3 *. v
        | Error _ -> false);
    prop "parser is total: random text never raises" ~count:500
      QCheck.(string_gen_of_size (Gen.int_range 0 200) Gen.printable)
      (fun text ->
        match P.parse_string text with Ok _ | Error _ -> true);
    prop "parser is total on statement-shaped garbage" ~count:300
      QCheck.(
        list_of_size (Gen.int_range 1 8)
          (oneofl
             [
               "vertex a ip throughput=1Gbps"; "vertex a"; "edge a -> b";
               "edge -> ->"; "hardware interface=1Gbps"; "traffic rate=x";
               "class weight=-1"; "vertex b egress queue=0"; "# comment";
               "edge a -> a"; "vertex c ip partition=9";
             ]))
      (fun lines ->
        match P.parse_string (String.concat "\n" lines) with
        | Ok _ | Error _ -> true);
  ]

let dot_rendering () =
  let doc = parse_ok sample_graph in
  let dot = Lognic_dsl.Printer.to_dot doc.graph in
  List.iter
    (fun fragment ->
      Alcotest.(check bool)
        (Printf.sprintf "dot mentions %S" fragment)
        true
        (contains_substring dot fragment))
    [ "digraph"; "rankdir=LR"; "cores"; "shape=house"; "shape=box"; "->" ]

let suite =
  [
    quick "quantity: rates" quantity_rates;
    quick "quantity: sizes, times, ops" quantity_sizes_times_ops;
    quick "quantity: bare and bad" quantity_bare_and_bad;
    quick "quantity: printers" quantity_printers;
    quick "quantity: whitespace before the unit" quantity_whitespace;
    quick "quantity: print/parse round trip" quantity_print_parse_round_trip;
    quick "parser: full document" parser_full_document;
    quick "parser: defaults" parser_defaults;
    quick "parser: comments" parser_comments_and_blanks;
    quick "parser: error messages" parser_errors;
    quick "parser: service validation" parser_rejects_bad_service;
    quick "printer: round trip" roundtrip;
    quick "parser: missing file" parse_file_missing;
    quick "parser: traffic mixes" parser_traffic_mix;
    quick "printer: mix round trip" mix_roundtrip;
    quick "printer: DOT rendering" dot_rendering;
  ]
  @ properties
