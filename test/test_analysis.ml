(* Tests for the analysis extensions: M/D/1, sensitivity elasticities,
   and the on-path/off-path deployment study. *)

open Helpers
module G = Lognic.Graph
module U = Lognic.Units
module T = Lognic.Traffic
module Q = Lognic_queueing
module N = Lognic_numerics
module S = Lognic_sim

(* M/D/1 *)

let md1_half_of_mm1 () =
  List.iter
    (fun rho ->
      let md1 = Q.Md1.create ~lambda:rho ~mu:1. in
      let mm1 = Q.Mm1.create ~lambda:rho ~mu:1. in
      check_close ~tol:1e-12
        (Printf.sprintf "Wq(M/D/1) = Wq(M/M/1)/2 at rho %g" rho)
        (Q.Mm1.mean_waiting_time mm1 /. 2.)
        (Q.Md1.mean_waiting_time md1))
    [ 0.1; 0.5; 0.9 ]

let md1_littles_and_instability () =
  let q = Q.Md1.create ~lambda:0.8 ~mu:1. in
  check_close ~tol:1e-12 "L = lambda W"
    (0.8 *. Q.Md1.mean_time_in_system q)
    (Q.Md1.mean_number_in_system q);
  Alcotest.(check bool)
    "unstable diverges" true
    (Q.Md1.mean_waiting_time (Q.Md1.create ~lambda:2. ~mu:1.) = infinity);
  check_raises_invalid "validation" (fun () -> Q.Md1.create ~lambda:0. ~mu:1.)

let md1_matches_deterministic_sim () =
  (* Poisson arrivals + deterministic service at an Ip_node = M/D/1 *)
  let engine = S.Engine.create () in
  let rng = N.Rng.create ~seed:9 in
  let node =
    S.Ip_node.create engine ~rng:(N.Rng.split rng) ~label:"n" ~engines:1
      ~rate_per_engine:100. ~queue_capacity:100_000
      ~service_dist:S.Ip_node.Deterministic
  in
  let lambda = 0.7 in
  let stats = N.Stats.Online.create () in
  let horizon = 100_000. in
  let rec arrive () =
    let born = S.Engine.now engine in
    ignore
      (S.Ip_node.submit node ~work:100. (fun () ->
           if born > 1000. then
             N.Stats.Online.add stats (S.Engine.now engine -. born)));
    let next = born +. N.Dist.sample (N.Dist.exponential ~rate:lambda) rng in
    if next < horizon then S.Engine.schedule engine ~at:next arrive
  in
  S.Engine.schedule engine ~at:0.1 arrive;
  S.Engine.run ~until:horizon engine;
  let predicted = Q.Md1.mean_time_in_system (Q.Md1.create ~lambda ~mu:1.) in
  check_within ~pct:4. "M/D/1 sojourn matches sim" predicted
    (N.Stats.Online.mean stats)

(* Sensitivity *)

let hw = Lognic.Params.hardware ~bw_interface:(50. *. U.gbps) ~bw_memory:(60. *. U.gbps)

let two_stage ?(p1 = 2. *. U.gbps) ?(p2 = 8. *. U.gbps) () =
  let svc t = G.service ~throughput:t () in
  let g = G.empty in
  let g, i = G.add_vertex ~kind:G.Ingress ~label:"in" ~service:(svc (25. *. U.gbps)) g in
  let g, a = G.add_vertex ~kind:G.Ip ~label:"a" ~service:(svc p1) g in
  let g, b = G.add_vertex ~kind:G.Ip ~label:"b" ~service:(svc p2) g in
  let g, e = G.add_vertex ~kind:G.Egress ~label:"out" ~service:(svc (25. *. U.gbps)) g in
  let g = G.add_edge ~delta:1. ~src:i ~dst:a g in
  let g = G.add_edge ~delta:1. ~src:a ~dst:b g in
  let g = G.add_edge ~delta:1. ~src:b ~dst:e g in
  (g, a, b)

let sensitivity_identifies_bottleneck () =
  let g, a, _ = two_stage () in
  (* moderately saturating load: vertex a (2G) binds. (Eq 11 feeds
     every vertex the full BW_in, so a wildly oversubscribed load would
     make downstream queues look sensitive too.) *)
  let traffic = T.make ~rate:(2.2 *. U.gbps) ~packet_size:1500. in
  let elasticities = Lognic.Sensitivity.analyze g ~hw ~traffic in
  (match Lognic.Sensitivity.most_binding elasticities with
  | Lognic.Sensitivity.P_vertex id -> Alcotest.(check int) "vertex a binds" a id
  | _ -> Alcotest.fail "expected a vertex parameter");
  let of_param p =
    List.find
      (fun (e : Lognic.Sensitivity.elasticity) -> e.parameter = p)
      elasticities
  in
  let bottleneck = of_param (Lognic.Sensitivity.P_vertex a) in
  check_within ~pct:10. "binding elasticity ~ 1" 1. bottleneck.throughput_elasticity;
  (* slack vertex: zero throughput elasticity *)
  let slack = of_param (Lognic.Sensitivity.P_vertex 2) in
  Alcotest.(check bool)
    "slack elasticity ~ 0" true
    (abs_float slack.throughput_elasticity < 0.05)

let sensitivity_offered_load_regime () =
  let g, a, _ = two_stage () in
  (* light load: the offered rate is the binding input *)
  let traffic = T.make ~rate:(0.5 *. U.gbps) ~packet_size:1500. in
  let elasticities = Lognic.Sensitivity.analyze g ~hw ~traffic in
  Alcotest.(check bool)
    "offered load binds" true
    (Lognic.Sensitivity.most_binding elasticities = Lognic.Sensitivity.Offered_rate);
  (* capacity increases at the (queueing-relevant) bottleneck reduce
     latency: negative latency elasticity *)
  let bottleneck =
    List.find
      (fun (e : Lognic.Sensitivity.elasticity) ->
        e.parameter = Lognic.Sensitivity.P_vertex a)
      elasticities
  in
  Alcotest.(check bool)
    "more capacity, less latency" true
    (bottleneck.latency_elasticity < -0.1)

let sensitivity_rejects_invalid () =
  let g = G.empty in
  let g, _ = G.add_vertex ~kind:G.Ip ~label:"x" ~service:G.default_service g in
  check_raises_invalid "invalid graph" (fun () ->
      Lognic.Sensitivity.analyze g ~hw
        ~traffic:(T.make ~rate:1e9 ~packet_size:1500.))

(* Off-path study *)

let offpath_graphs_valid () =
  List.iter
    (fun f ->
      let open Lognic_apps.Offpath_study in
      Alcotest.(check bool) "on-path valid" true
        (Result.is_ok (G.validate (on_path_graph ~compute_fraction:f default)));
      Alcotest.(check bool) "off-path valid" true
        (Result.is_ok (G.validate (off_path_graph ~compute_fraction:f default))))
    [ 0.05; 0.5; 1.0 ];
  check_raises_invalid "fraction domain" (fun () ->
      Lognic_apps.Offpath_study.(on_path_graph ~compute_fraction:0. default))

let offpath_bypass_advantage () =
  let open Lognic_apps.Offpath_study in
  let points = sweep default in
  (* off-path capacity dominates or ties everywhere *)
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "off >= on at f=%g" p.compute_fraction)
        true
        (p.off_path_capacity >= p.on_path_capacity -. 1e-3))
    points;
  (* latency: bypass saves the SoC transit at low compute fractions *)
  let low = List.hd points in
  Alcotest.(check bool)
    "bypass latency advantage at low f" true
    (low.off_path_latency < 0.5 *. low.on_path_latency);
  (* both converge to the SoC rate when everything needs computing *)
  let full = List.nth points (List.length points - 1) in
  check_within ~pct:2. "f=1 capacities converge" full.off_path_capacity
    full.on_path_capacity;
  check_within ~pct:1. "f=1 capacity = SoC rate" default.soc_rate
    full.on_path_capacity

let offpath_crossover () =
  match Lognic_apps.Offpath_study.(crossover default) with
  | Some f -> Alcotest.(check bool) "crossover in the upper range" true (f >= 0.6)
  | None -> Alcotest.fail "expected a crossover"

let suite =
  [
    quick "md1: half of mm1" md1_half_of_mm1;
    quick "md1: little's law and instability" md1_littles_and_instability;
    slow "md1: matches deterministic sim" md1_matches_deterministic_sim;
    quick "sensitivity: identifies the bottleneck" sensitivity_identifies_bottleneck;
    quick "sensitivity: offered-load regime" sensitivity_offered_load_regime;
    quick "sensitivity: rejects invalid graphs" sensitivity_rejects_invalid;
    quick "offpath: graphs valid" offpath_graphs_valid;
    quick "offpath: bypass advantage" offpath_bypass_advantage;
    quick "offpath: crossover" offpath_crossover;
  ]
