(* Tests for the device models: parameter sanity and the figure-pinning
   relationships reverse-engineered from the paper. *)

open Helpers
module U = Lognic.Units
module G = Lognic.Graph
module D = Lognic_devices

(* Accelerator catalog *)

let accel_catalog () =
  Alcotest.(check int) "nine engines" 9 (List.length D.Accel_spec.all);
  (match D.Accel_spec.find "md5" with
  | Some spec -> Alcotest.(check string) "case-insensitive find" "MD5" spec.name
  | None -> Alcotest.fail "md5 missing");
  Alcotest.(check bool) "unknown engine" true (D.Accel_spec.find "quantum" = None)

let accel_fig5_ratios () =
  (* Fig 5's 16KB-granularity percentages pin the peak rates: the
     medium's op ceiling at 16KB over the peak must give the paper's
     13.6 / 17.3 / 21.2 / 25.8 numbers. *)
  let ratio (spec : D.Accel_spec.t) =
    let medium_bw =
      match spec.medium with
      | D.Accel_spec.Cmi -> D.Liquidio.cmi_bandwidth
      | D.Accel_spec.Io_interconnect -> D.Liquidio.io_bandwidth
    in
    medium_bw /. 16384. /. spec.peak_ops
  in
  check_within ~pct:2. "CRC 13.6%" 0.136 (ratio D.Accel_spec.crc);
  check_within ~pct:2. "3DES 17.3%" 0.173 (ratio D.Accel_spec.des3);
  check_within ~pct:2. "MD5 21.2%" 0.212 (ratio D.Accel_spec.md5);
  check_within ~pct:2. "HFA 25.8%" 0.258 (ratio D.Accel_spec.hfa)

let accel_media_assignment () =
  Alcotest.(check bool) "crypto on CMI" true (D.Accel_spec.md5.medium = D.Accel_spec.Cmi);
  Alcotest.(check bool)
    "HFA off-chip" true
    (D.Accel_spec.hfa.medium = D.Accel_spec.Io_interconnect)

(* LiquidIO *)

let liquidio_constants () =
  check_close "25GbE" (25. *. U.gbps) D.Liquidio.line_rate;
  Alcotest.(check int) "16 cores" 16 D.Liquidio.total_cores;
  check_close "CMI 50G" (50. *. U.gbps) D.Liquidio.cmi_bandwidth;
  check_close "I/O fabric 40G" (40. *. U.gbps) D.Liquidio.io_bandwidth

let liquidio_graph_shape () =
  let g =
    D.Liquidio.inline_accel_graph ~spec:D.Accel_spec.md5 ~packet_size:U.mtu ()
  in
  Alcotest.(check bool) "valid" true (Result.is_ok (G.validate g));
  Alcotest.(check int) "5 vertices (rx, ip1, ip2, ip3, tx)" 5 (G.vertex_count g);
  (* the accelerator hop uses the engine's medium *)
  let accel = Option.get (G.find_vertex g ~label:"ip2.MD5") in
  let fetch = List.hd (G.in_edges g accel.id) in
  Alcotest.(check bool) "MD5 fetch crosses CMI (beta)" true (fetch.beta > 0.);
  check_raises_invalid "core range" (fun () ->
      D.Liquidio.inline_accel_graph ~cores:0 ~spec:D.Accel_spec.md5
        ~packet_size:U.mtu ())

let liquidio_microservice_rate () =
  check_close "1.5GHz core, 1500 cycles -> 1 MRPS" 1e6
    (D.Liquidio.microservice_core_rate ~cost_cycles:1500. ~cores:1);
  check_close "scales with cores" 4e6
    (D.Liquidio.microservice_core_rate ~cost_cycles:1500. ~cores:4);
  check_raises_invalid "zero cost" (fun () ->
      D.Liquidio.microservice_core_rate ~cost_cycles:0. ~cores:1)

(* SSD *)

let ssd_effective_profiles () =
  let eff io gc = D.Ssd.effective D.Ssd.default ~io ~gc in
  let rrd = eff D.Ssd.rrd_4k D.Ssd.Gc_none in
  (* 4K reads: ~85us + transfer; capacity around 2.5-3 GB/s *)
  Alcotest.(check bool)
    "4K read service in the 90us ballpark" true
    (rrd.service_time > 80e-6 && rrd.service_time < 110e-6);
  Alcotest.(check bool)
    "4K read capacity 2-3.5 GB/s" true
    (rrd.capacity > 2e9 && rrd.capacity < 3.5e9);
  (* 128K reads are bus-bound *)
  let big = eff D.Ssd.rrd_128k D.Ssd.Gc_none in
  check_close "128K capacity = internal bus" D.Ssd.default.internal_bandwidth
    big.capacity;
  (* sequential writes never pay GC *)
  let swr_frag = eff D.Ssd.swr_4k D.Ssd.Gc_realistic in
  let swr_clean = eff D.Ssd.swr_4k D.Ssd.Gc_none in
  check_close "sequential writes immune to GC" swr_clean.service_time
    swr_frag.service_time

let ssd_gc_modes_ordering () =
  let io = D.Ssd.mixed_4k ~read_fraction:0.5 in
  let cap gc = (D.Ssd.effective D.Ssd.default ~io ~gc).capacity in
  Alcotest.(check bool)
    "none >= realistic >= worst case" true
    (cap D.Ssd.Gc_none >= cap D.Ssd.Gc_realistic
    && cap D.Ssd.Gc_realistic >= cap D.Ssd.Gc_worst_case);
  (* pure reads: all modes agree *)
  let reads = D.Ssd.mixed_4k ~read_fraction:1. in
  check_close "reads unaffected by GC"
    (D.Ssd.effective D.Ssd.default ~io:reads ~gc:D.Ssd.Gc_none).capacity
    (D.Ssd.effective D.Ssd.default ~io:reads ~gc:D.Ssd.Gc_worst_case).capacity

let ssd_validation () =
  check_raises_invalid "read_fraction domain" (fun () ->
      D.Ssd.effective D.Ssd.default
        ~io:{ D.Ssd.rrd_4k with read_fraction = 1.5 }
        ~gc:D.Ssd.Gc_none)

(* Stingray *)

let stingray_graph () =
  let g = D.Stingray.nvme_of_graph ~io:D.Ssd.rrd_4k () in
  Alcotest.(check bool) "valid" true (Result.is_ok (G.validate g));
  Alcotest.(check int) "Figure 2c plus the SSD bus" 6 (G.vertex_count g);
  (* the drive's internal bus appears as its own serialization vertex *)
  let bus = Option.get (G.find_vertex g ~label:"ip2.ssd.bus") in
  let eff0 = D.Ssd.effective D.Ssd.default ~io:D.Ssd.rrd_4k ~gc:D.Ssd.Gc_none in
  check_close "bus rate" eff0.D.Ssd.bus_bandwidth bus.service.throughput;
  (* SSD capacity in the graph matches the effective model *)
  let eff = D.Ssd.effective D.Ssd.default ~io:D.Ssd.rrd_4k ~gc:D.Ssd.Gc_none in
  let traffic = Lognic.Traffic.make ~rate:(2. *. eff.capacity) ~packet_size:(4. *. U.kib) in
  let r = Lognic.Throughput.evaluate g ~hw:D.Stingray.hardware ~traffic in
  check_within ~pct:1. "SSD bounds the graph" eff.capacity r.capacity

(* BlueField-2 *)

let bluefield_placements_enumeration () =
  let placements = D.Bluefield2.placements () in
  Alcotest.(check int) "2^4 placements" 16 (List.length placements);
  (* DPI is pinned to ARM in all of them *)
  Alcotest.(check bool)
    "DPI always on ARM" true
    (List.for_all (fun p -> p D.Bluefield2.Dpi = D.Bluefield2.On_arm) placements)

let bluefield_costs_monotone_in_size () =
  List.iter
    (fun nf ->
      Alcotest.(check bool)
        (D.Bluefield2.nf_name nf ^ " cost grows with size")
        true
        (D.Bluefield2.arm_cycles nf ~packet_size:1500.
        > D.Bluefield2.arm_cycles nf ~packet_size:64.))
    D.Bluefield2.chain

let bluefield_accel_interface () =
  check_raises_invalid "DPI has no accel" (fun () ->
      D.Bluefield2.accel_rate D.Bluefield2.Dpi ~packet_size:64.);
  Alcotest.(check bool)
    "PE accel byte-bound at MTU" true
    (D.Bluefield2.accel_rate D.Bluefield2.Pe ~packet_size:1500. = 60. *. U.gbps);
  Alcotest.(check bool)
    "PE accel pps-bound at 64B" true
    (D.Bluefield2.accel_rate D.Bluefield2.Pe ~packet_size:64. = 8e6 *. 64.)

let bluefield_graph_shapes () =
  let arm_only _ = D.Bluefield2.On_arm in
  let g = D.Bluefield2.chain_graph ~placement_of:arm_only ~packet_size:U.mtu () in
  Alcotest.(check bool) "arm-only valid" true (Result.is_ok (G.validate g));
  Alcotest.(check int) "arm-only: 7 vertices" 7 (G.vertex_count g);
  let accel nf =
    if D.Bluefield2.has_accelerator nf then D.Bluefield2.On_accel
    else D.Bluefield2.On_arm
  in
  let g2 = D.Bluefield2.chain_graph ~placement_of:accel ~packet_size:U.mtu () in
  Alcotest.(check bool) "accel-only valid" true (Result.is_ok (G.validate g2));
  (* 4 accelerated NFs contribute shepherd+accel pairs: 2 + 1 + 4*2 + ... *)
  Alcotest.(check int) "accel-only: 11 vertices" 11 (G.vertex_count g2)

let bluefield_rtc_capacity_invariant () =
  (* With cost-proportional gamma, the ARM-only chain capacity equals the
     cluster's run-to-completion rate regardless of the stage count. *)
  let g =
    D.Bluefield2.chain_graph ~placement_of:(fun _ -> D.Bluefield2.On_arm)
      ~packet_size:U.mtu ()
  in
  let total_cycles =
    List.fold_left
      (fun acc nf -> acc +. D.Bluefield2.arm_cycles nf ~packet_size:U.mtu)
      0. D.Bluefield2.chain
  in
  let rtc_rate =
    float_of_int D.Bluefield2.total_cores *. D.Bluefield2.core_frequency
    /. total_cycles *. U.mtu
  in
  check_within ~pct:1. "chain capacity = RtC rate" rtc_rate
    (Lognic.Throughput.capacity g ~hw:D.Bluefield2.hardware)

(* PANIC *)

let panic_effective_rate () =
  (* single-size mix reduces to the plain rate formula *)
  let c_pp = 5e-9 and bw = 31.3e9 in
  let direct = 1500. /. (c_pp +. (1500. /. bw)) in
  check_close ~tol:1e-9 "single-size effective rate" direct
    (D.Panic.effective_unit_rate (c_pp, bw) ~sizes:[ (1500., 1.) ]);
  (* smaller harmonic mean -> lower rate *)
  let small = D.Panic.effective_unit_rate (c_pp, bw) ~sizes:[ (64., 1.); (512., 1.) ] in
  let large = D.Panic.effective_unit_rate (c_pp, bw) ~sizes:[ (1024., 1.); (1500., 1.) ] in
  Alcotest.(check bool) "small packets hurt more" true (small < large)

let panic_graphs_valid () =
  let check_valid name g =
    Alcotest.(check bool) (name ^ " valid") true (Result.is_ok (G.validate g))
  in
  check_valid "pipelined" (D.Panic.pipelined_graph ~sizes:[ (64., 1.); (512., 1.) ] ());
  check_valid "parallelized"
    (D.Panic.parallelized_graph ~split:(20., 40., 40.) ~packet_size:512. ());
  check_valid "hybrid"
    (D.Panic.hybrid_graph ~ip1_split:(50., 50.) ~packet_size:U.mtu ());
  check_raises_invalid "bad split" (fun () ->
      D.Panic.parallelized_graph ~split:(-1., 1., 1.) ~packet_size:512. ())

let panic_parallelized_capacity_ratio () =
  (* A2 (56 Gbps) fed f2 = 0.56 of the workload caps the graph at
     exactly 100 Gbps; A3 (24 Gbps at f3 = 0.24) ties, A1 has slack.
     Any deviation from the proportional split lowers the capacity. *)
  let cap split =
    Lognic.Throughput.capacity
      (D.Panic.parallelized_graph ~split ~packet_size:512. ())
      ~hw:D.Panic.hardware
  in
  check_within ~pct:1. "proportional split reaches 100G" (100. *. U.gbps)
    (cap (20., 56., 24.));
  Alcotest.(check bool)
    "skewed splits are worse" true
    (cap (20., 30., 50.) < cap (20., 56., 24.)
    && cap (20., 70., 10.) < cap (20., 56., 24.))

let panic_hybrid_parallelism_scales_ip4 () =
  let cap d =
    Lognic.Throughput.capacity
      (D.Panic.hybrid_graph ~ip4_parallelism:d ~ip1_split:(50., 50.) ~packet_size:U.mtu ())
      ~hw:D.Panic.hardware
  in
  Alcotest.(check bool) "more engines, more capacity" true (cap 4 > cap 1);
  (* below the knee IP4 is binding: capacity = d x engine rate / load share *)
  check_within ~pct:1. "IP4 binding at degree 1"
    (D.Panic.ip4_engine_rate /. 0.65)
    (cap 1)

let suite =
  [
    quick "accel: catalog" accel_catalog;
    quick "accel: Fig 5 ratios pinned" accel_fig5_ratios;
    quick "accel: media assignment" accel_media_assignment;
    quick "liquidio: constants" liquidio_constants;
    quick "liquidio: graph shape" liquidio_graph_shape;
    quick "liquidio: microservice core rate" liquidio_microservice_rate;
    quick "ssd: effective profiles" ssd_effective_profiles;
    quick "ssd: GC mode ordering" ssd_gc_modes_ordering;
    quick "ssd: validation" ssd_validation;
    quick "stingray: graph" stingray_graph;
    quick "bluefield: placements" bluefield_placements_enumeration;
    quick "bluefield: costs monotone" bluefield_costs_monotone_in_size;
    quick "bluefield: accel interface" bluefield_accel_interface;
    quick "bluefield: graph shapes" bluefield_graph_shapes;
    quick "bluefield: RtC capacity invariant" bluefield_rtc_capacity_invariant;
    quick "panic: effective unit rate" panic_effective_rate;
    quick "panic: graphs valid" panic_graphs_valid;
    quick "panic: parallel capacity ratio" panic_parallelized_capacity_ratio;
    quick "panic: hybrid IP4 scaling" panic_hybrid_parallelism_scales_ip4;
  ]
