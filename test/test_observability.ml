(* Tests for the observability layer: packet-lifecycle tracing
   (reservoir sampling, span exactness, Chrome export, the
   zero-perturbation guarantee), the model-vs-sim explain engine, and
   optimizer search telemetry. *)

open Helpers
module S = Lognic_sim
module G = Lognic.Graph
module U = Lognic.Units
module T = Lognic.Traffic

let hw = Lognic.Params.hardware ~bw_interface:(50. *. U.gbps) ~bw_memory:(60. *. U.gbps)

(* in -> ip -> out with a per-vertex overhead, so traces exercise all
   four span phases (queue, service, wire, overhead). *)
let pipeline ?(queue = 32) ?(ip_rate = 4. *. U.gbps) ?(alpha = 1.) () =
  let svc t = G.service ~throughput:t () in
  let g = G.empty in
  let g, i = G.add_vertex ~kind:G.Ingress ~label:"in" ~service:(svc (25. *. U.gbps)) g in
  let g, w =
    G.add_vertex ~kind:G.Ip ~label:"ip"
      ~service:
        (G.service ~throughput:ip_rate ~queue_capacity:queue ~overhead:1e-7 ())
      g
  in
  let g, e = G.add_vertex ~kind:G.Egress ~label:"out" ~service:(svc (25. *. U.gbps)) g in
  let g = G.add_edge ~delta:1. ~alpha ~src:i ~dst:w g in
  let g = G.add_edge ~delta:1. ~alpha ~src:w ~dst:e g in
  g

let traced_config =
  S.Netsim.Config.(
    default |> with_horizon 0.02 |> with_trace { S.Trace.reservoir = 32 })

let traffic = T.make ~rate:(3. *. U.gbps) ~packet_size:1500.

(* Tentpole invariant: a packet's spans tile [born, delivered] — the
   critical path is chronological, contiguous, and its durations sum
   exactly to the recorded end-to-end latency. *)
let spans_sum_to_latency () =
  let m = S.Netsim.run_single ~config:traced_config (pipeline ()) ~hw ~traffic in
  let trace = Option.get m.S.Netsim.trace in
  let delivered =
    List.filter
      (fun (r : S.Trace.record) ->
        match r.fate with S.Trace.Delivered _ -> true | _ -> false)
      (S.Trace.records trace)
  in
  Alcotest.(check bool) "sampled delivered packets" true (List.length delivered > 0);
  List.iter
    (fun (r : S.Trace.record) ->
      let latency = Option.get (S.Trace.latency r) in
      check_close
        (Printf.sprintf "packet %d span sum = latency" r.packet)
        latency (S.Trace.span_total r);
      let path = S.Trace.critical_path r in
      Alcotest.(check bool) "has spans" true (path <> []);
      (* chronological and contiguous from birth to delivery *)
      let end_time =
        List.fold_left
          (fun cursor (s : S.Trace.span) ->
            check_close "contiguous span" cursor s.start;
            s.start +. s.duration)
          r.born path
      in
      (match r.fate with
      | S.Trace.Delivered at -> check_close "ends at delivery" at end_time
      | _ -> assert false);
      Alcotest.(check bool)
        "durations positive" true
        (List.for_all (fun (s : S.Trace.span) -> s.duration > 0.) path))
    delivered

let reservoir_deterministic () =
  let ids m =
    List.map
      (fun (r : S.Trace.record) -> r.packet)
      (S.Trace.records (Option.get m.S.Netsim.trace))
  in
  let run () = S.Netsim.run_single ~config:traced_config (pipeline ()) ~hw ~traffic in
  Alcotest.(check (list int)) "same seed, same reservoir" (ids (run ())) (ids (run ()));
  let other =
    S.Netsim.run_single
      ~config:{ traced_config with seed = 7 }
      (pipeline ()) ~hw ~traffic
  in
  Alcotest.(check bool)
    "different seed, different reservoir" true
    (ids (run ()) <> ids other)

(* The zero-perturbation guarantee: enabling tracing must not change a
   single measured bit — the measurement JSON is byte-identical. *)
let disabled_trace_bit_identical () =
  let untraced = { traced_config with trace = None } in
  let dump config =
    S.Telemetry.Json.to_string
      (S.Netsim.measurement_to_json
         (S.Netsim.run_single ~config (pipeline ()) ~hw ~traffic))
  in
  Alcotest.(check string)
    "measurement JSON identical with tracing on/off" (dump untraced)
    (dump traced_config)

(* Tracing composes with the parallel driver: --jobs N replication is
   bit-identical to sequential even with the trace recorder attached. *)
let traced_jobs_invariant () =
  let mix = [ (traffic, 1.) ] in
  let run jobs =
    S.Parallel.run_replicated ~jobs ~config:traced_config ~runs:3 (pipeline ())
      ~hw ~mix
  in
  let a = run 1 and b = run 4 in
  Alcotest.(check bool)
    "replicated stats bit-identical at any jobs count" true
    (a.S.Netsim.throughput_mean = b.S.Netsim.throughput_mean
    && a.S.Netsim.latency_mean = b.S.Netsim.latency_mean
    && a.S.Netsim.loss_mean = b.S.Netsim.loss_mean)

let chrome_json_roundtrip () =
  let m = S.Netsim.run_single ~config:traced_config (pipeline ()) ~hw ~traffic in
  let trace = Option.get m.S.Netsim.trace in
  let text = S.Trace.to_chrome_string trace in
  match S.Telemetry.Json.of_string text with
  | Error e -> Alcotest.failf "chrome trace does not parse: %s" e
  | Ok json ->
    Alcotest.(check string)
      "round-trips exactly" text
      (S.Telemetry.Json.to_string json);
    (match S.Telemetry.Json.member "traceEvents" json with
    | Some (S.Telemetry.Json.Arr events) ->
      Alcotest.(check bool) "has events" true (List.length events > 0)
    | _ -> Alcotest.fail "missing traceEvents array")

(* Acceptance: explain names the same bottleneck as the analytic
   roofline, on a compute-bound and on an interface-bound graph. *)
let explain_config = { traced_config with trace = None }

let explain_agrees_when_vertex_bound () =
  let g = pipeline ~ip_rate:(2. *. U.gbps) () in
  let r = S.Explain.run ~config:explain_config g ~hw ~traffic in
  Alcotest.(check string) "model names ip" "ip" r.S.Explain.model_bottleneck;
  Alcotest.(check string) "sim names ip" "ip" r.S.Explain.sim_bottleneck;
  Alcotest.(check bool) "agree" true r.S.Explain.agree

let explain_agrees_when_interface_bound () =
  (* alpha=3 on both hops: sum-alpha 6 puts the interface cap at
     ~8.3 Gbps, far below the 20 Gbps IP. *)
  let g = pipeline ~ip_rate:(20. *. U.gbps) ~alpha:3. () in
  let traffic = T.make ~rate:(12. *. U.gbps) ~packet_size:1500. in
  let r = S.Explain.run ~config:explain_config g ~hw ~traffic in
  Alcotest.(check string)
    "model names interface" "interface" r.S.Explain.model_bottleneck;
  Alcotest.(check string)
    "sim names interface" "interface" r.S.Explain.sim_bottleneck;
  Alcotest.(check bool) "agree" true r.S.Explain.agree

let explain_rows_ranked_and_joined () =
  let g = pipeline ~ip_rate:(2. *. U.gbps) () in
  let r = S.Explain.run ~config:explain_config g ~hw ~traffic in
  let utils = List.map (fun (e : S.Explain.entity_row) -> e.sim_utilization) r.rows in
  Alcotest.(check bool)
    "ranked by sim utilization" true
    (List.sort (fun a b -> Float.compare b a) utils = utils);
  let ip = List.find (fun (e : S.Explain.entity_row) -> e.name = "ip") r.rows in
  Alcotest.(check bool) "vertex rows carry queue join" true
    (ip.model_queue_depth <> None && ip.sim_queue_depth <> None);
  (* saturated vertex: both sides see utilization ~1 *)
  check_within ~pct:5. "model util" 1. ip.model_utilization;
  check_within ~pct:5. "sim util" 1. ip.sim_utilization;
  match S.Telemetry.Json.of_string (S.Explain.to_string r) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "explain JSON does not parse: %s" e

(* Optimizer search telemetry: the observer sees every evaluation,
   and the search log's fold matches the solution's own stats. *)
let search_log_matches_stats () =
  let g = pipeline ~ip_rate:(2. *. U.gbps) () in
  let _, w, _ =
    match G.vertices g with
    | [ a; b; c ] -> (a.G.id, b.G.id, c.G.id)
    | _ -> assert false
  in
  let log = S.Search_log.create () in
  let solution =
    Lognic.Optimizer.optimize ~observer:(S.Search_log.observer log) g ~hw
      ~traffic
      ~knobs:
        [
          Lognic.Optimizer.Queue_capacity (w, 4, 16);
          Lognic.Optimizer.Accel (w, [| 1.; 2.; 4. |]);
        ]
      Lognic.Optimizer.Maximize_throughput
  in
  Alcotest.(check int)
    "observer saw every evaluation"
    solution.stats.Lognic.Optimizer.evaluations
    (S.Search_log.observations log);
  Alcotest.(check int)
    "observer saw every memo hit" solution.stats.Lognic.Optimizer.memo_hits
    (S.Search_log.cache_hits log);
  (match S.Search_log.best log with
  | None -> Alcotest.fail "no best candidate recorded"
  | Some (score, _) ->
    Alcotest.(check bool) "best score is a real score" true (Float.is_finite score));
  Alcotest.(check bool)
    "histogram covers both knobs" true
    (List.mem_assoc (Printf.sprintf "queue_capacity:%d" w)
       (S.Search_log.knob_histogram log)
    && List.mem_assoc (Printf.sprintf "accel:%d" w)
         (S.Search_log.knob_histogram log));
  match S.Telemetry.Json.of_string (S.Search_log.to_string log) with
  | Ok json ->
    Alcotest.(check bool)
      "best_curve present" true
      (S.Telemetry.Json.member "best_curve" json <> None)
  | Error e -> Alcotest.failf "search log JSON does not parse: %s" e

(* Series overload behaviour: the ring buffer is bounded, keeps the
   newest samples in order, and its CSV export stays well-formed after
   wrapping. *)
let series_wraparound () =
  let s =
    S.Telemetry.Series.create ~capacity:8 ~label:"depth" ~interval:1. ()
  in
  for i = 0 to 19 do
    S.Telemetry.Series.add s ~time:(float_of_int i)
      ~value:(float_of_int (i * i))
  done;
  Alcotest.(check int) "capacity" 8 (S.Telemetry.Series.capacity s);
  Alcotest.(check int) "length clamps at capacity" 8
    (S.Telemetry.Series.length s);
  let a = S.Telemetry.Series.to_array s in
  Alcotest.(check int) "array length" 8 (Array.length a);
  Array.iteri
    (fun i (time, value) ->
      (* newest 8 of 20 samples: times 12..19, chronological *)
      check_close "wrapped time" (float_of_int (i + 12)) time;
      check_close "wrapped value" (float_of_int ((i + 12) * (i + 12))) value)
    a

let series_csv_after_wrap () =
  let s = S.Telemetry.Series.create ~capacity:4 ~label:"q" ~interval:1. () in
  for i = 0 to 9 do
    S.Telemetry.Series.add s ~time:(float_of_int i) ~value:(float_of_int i)
  done;
  let csv = S.Telemetry.Series.to_csv s in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' csv)
  in
  (match lines with
  | header :: rows ->
    Alcotest.(check string) "header names the label" "time,q" header;
    Alcotest.(check int) "one row per retained sample" 4 (List.length rows);
    Alcotest.(check bool) "first retained row is the oldest survivor" true
      (contains_substring (List.hd rows) "6")
  | [] -> Alcotest.fail "empty CSV");
  check_raises_invalid "non-positive capacity" (fun () ->
      S.Telemetry.Series.create ~capacity:0 ~label:"q" ~interval:1. ())

(* Degenerate sample intervals: 0 / negative are programming errors;
   an interval longer than the horizon must still yield one final
   sample at the horizon — an empty series would make
   `lognic report --csv` emit a header-only file. *)
let series_degenerate_intervals () =
  let run interval =
    let config =
      S.Netsim.Config.(
        default |> with_horizon 0.02 |> with_sampling interval)
    in
    S.Netsim.run_single ~config (pipeline ()) ~hw ~traffic
  in
  check_raises_invalid "zero interval" (fun () -> ignore (run 0.));
  check_raises_invalid "negative interval" (fun () -> ignore (run (-1e-3)));
  let check_single_final_sample name m =
    Alcotest.(check bool)
      (name ^ ": run produced series") true (m.S.Netsim.series <> []);
    List.iter
      (fun s ->
        Alcotest.(check int)
          (Printf.sprintf "%s: series %S has exactly one sample" name
             (S.Telemetry.Series.label s))
          1
          (S.Telemetry.Series.length s);
        let time, _ = (S.Telemetry.Series.to_array s).(0) in
        check_close (name ^ ": final sample sits at the horizon") 0.02 time)
      m.S.Netsim.series
  in
  (* interval beyond the horizon: the one-shot fallback fires *)
  check_single_final_sample "oversized" (run 1.0);
  (* interval exactly the horizon: the regular grid lands one sample
     at t = horizon and must not double up with the fallback *)
  check_single_final_sample "exact horizon" (run 0.02)

(* Read-only probes under overload: a run that drops packets (full
   queues, saturated media) re-measured with a metrics registry whose
   callback aggressively reads cumulative state mid-run must still
   produce byte-identical measurement JSON. *)
let probes_read_only_under_overload () =
  let g = pipeline ~queue:4 ~ip_rate:(1. *. U.gbps) () in
  let traffic = T.make ~rate:(8. *. U.gbps) ~packet_size:1500. in
  let overload = { traced_config with trace = None } in
  let dump config =
    S.Telemetry.Json.to_string
      (S.Netsim.measurement_to_json
         (S.Netsim.run_single ~config g ~hw ~traffic))
  in
  let reads = ref 0 in
  let metrics =
    {
      S.Metrics.default_config with
      interval = 5e-4;
      slo = [ S.Metrics.Slo.parse_exn "*.utilization>0.5" ];
      on_snapshot =
        Some
          (fun snap ->
            (* exercise every read-only export mid-run *)
            incr reads;
            ignore (S.Metrics.snapshot_to_string snap));
    }
  in
  let bare = dump overload in
  let probed = dump (S.Netsim.Config.with_metrics metrics overload) in
  (match S.Telemetry.Json.of_string bare with
  | Ok json -> (
    match
      Option.bind
        (S.Telemetry.Json.member "summary" json)
        (S.Telemetry.Json.member "dropped_packets")
    with
    | Some (S.Telemetry.Json.Num n) ->
      Alcotest.(check bool) "overload run drops packets" true (n > 0.)
    | _ -> Alcotest.fail "no summary.dropped_packets in measurement JSON")
  | Error e -> Alcotest.failf "measurement JSON does not parse: %s" e);
  Alcotest.(check bool) "callback ran" true (!reads > 10);
  Alcotest.(check string)
    "measurement JSON identical with probes reading mid-run" bare probed

let quantity_parse_exn_names_input () =
  check_raises_invalid "bad quantity" (fun () ->
      Lognic_dsl.Quantity.parse_exn "25Gbs");
  match Lognic_dsl.Quantity.parse_exn "25Gbs" with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
    Alcotest.(check bool)
      "message names the offending input" true
      (contains_substring msg "25Gbs")

let suite =
  [
    slow "trace: spans sum to latency" spans_sum_to_latency;
    slow "trace: reservoir deterministic" reservoir_deterministic;
    slow "trace: disabled path bit-identical" disabled_trace_bit_identical;
    slow "trace: jobs-invariant under parallel driver" traced_jobs_invariant;
    slow "trace: chrome JSON round-trips" chrome_json_roundtrip;
    slow "explain: agrees on vertex-bound graph" explain_agrees_when_vertex_bound;
    slow "explain: agrees on interface-bound graph"
      explain_agrees_when_interface_bound;
    slow "explain: rows ranked and joined" explain_rows_ranked_and_joined;
    quick "series: ring buffer wraparound" series_wraparound;
    quick "series: CSV after wrap" series_csv_after_wrap;
    quick "series: degenerate sample intervals" series_degenerate_intervals;
    slow "metrics: probes read-only under overload"
      probes_read_only_under_overload;
    quick "search log: matches optimizer stats" search_log_matches_stats;
    quick "quantity: parse_exn raises Invalid_argument"
      quantity_parse_exn_names_input;
  ]
