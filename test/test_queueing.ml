(* Tests for the queueing-theory substrate: closed forms, identities
   between the paper's Eq 12 and first-principles computation, and
   limiting behaviours. *)

open Helpers
module Q = Lognic_queueing

(* M/M/1 *)

let mm1_textbook () =
  (* rho = 0.5: L = 1, W = 1/(mu - lambda) = 0.2s with mu = 10. *)
  let q = Q.Mm1.create ~lambda:5. ~mu:10. in
  check_close "utilization" 0.5 (Q.Mm1.utilization q);
  check_close "L" 1. (Q.Mm1.mean_number_in_system q);
  check_close "Lq" 0.5 (Q.Mm1.mean_number_in_queue q);
  check_close "W" 0.2 (Q.Mm1.mean_time_in_system q);
  check_close "Wq" 0.1 (Q.Mm1.mean_waiting_time q)

let mm1_littles_law () =
  let q = Q.Mm1.create ~lambda:3. ~mu:7. in
  check_close ~tol:1e-12 "L = lambda W"
    (3. *. Q.Mm1.mean_time_in_system q)
    (Q.Mm1.mean_number_in_system q)

let mm1_unstable () =
  let q = Q.Mm1.create ~lambda:10. ~mu:5. in
  Alcotest.(check bool) "unstable" false (Q.Mm1.stable q);
  Alcotest.(check bool) "infinite W" true (Q.Mm1.mean_time_in_system q = infinity)

let mm1_validation () =
  check_raises_invalid "negative rate" (fun () -> Q.Mm1.create ~lambda:(-1.) ~mu:1.)

(* M/M/1/N *)

let mm1n_paper_worked_example () =
  (* rho = 0.5, N = 2: probabilities 4/7, 2/7, 1/7; L = 4/7;
     Q = L/lambda_e - 1/mu = 1/3 x (1/mu). Checked by hand against the
     paper's Eq 9-12 with mu = 1, lambda = 0.5. *)
  let q = Q.Mm1n.create ~lambda:0.5 ~mu:1. ~capacity:2 in
  check_close ~tol:1e-12 "Pro_0" (4. /. 7.) (Q.Mm1n.state_probability q 0);
  check_close ~tol:1e-12 "Pro_1" (2. /. 7.) (Q.Mm1n.state_probability q 1);
  check_close ~tol:1e-12 "Pro_2" (1. /. 7.) (Q.Mm1n.state_probability q 2);
  check_close ~tol:1e-12 "blocking" (1. /. 7.) (Q.Mm1n.blocking_probability q);
  check_close ~tol:1e-12 "L" (4. /. 7.) (Q.Mm1n.mean_number_in_system q);
  check_close ~tol:1e-9 "Q (Eq 9)" (1. /. 3.) (Q.Mm1n.mean_waiting_time q)

let mm1n_closed_form_agrees () =
  (* The paper's algebraic Eq 12 must equal the first-principles
     L/lambda_e - 1/mu across loads and capacities. *)
  List.iter
    (fun rho ->
      List.iter
        (fun capacity ->
          let q = Q.Mm1n.create ~lambda:rho ~mu:1. ~capacity in
          check_close ~tol:1e-9
            (Printf.sprintf "Eq12 at rho=%g N=%d" rho capacity)
            (Q.Mm1n.mean_waiting_time q)
            (Q.Mm1n.waiting_time_closed_form q))
        [ 1; 2; 5; 8; 32; 128 ])
    [ 0.05; 0.3; 0.7; 0.95; 1.2; 3. ]

let mm1n_rho_one_limit () =
  (* At rho = 1 the distribution is uniform; closed form uses the
     (N-1)/2 limit. *)
  let q = Q.Mm1n.create ~lambda:2. ~mu:2. ~capacity:4 in
  check_close ~tol:1e-9 "uniform states" 0.2 (Q.Mm1n.state_probability q 3);
  check_close ~tol:1e-6 "closed form at rho=1"
    (Q.Mm1n.mean_waiting_time q)
    (Q.Mm1n.waiting_time_closed_form q)

let mm1n_state_vector () =
  (* The one-shot probability vector agrees with the per-state query,
     sums to one, and indexes 0..N. *)
  let q = Q.Mm1n.create ~lambda:0.8 ~mu:1. ~capacity:6 in
  let probs = Q.Mm1n.state_probabilities q in
  Alcotest.(check int) "N+1 states" 7 (Array.length probs);
  Array.iteri
    (fun n p ->
      check_close ~tol:1e-12
        (Printf.sprintf "state %d" n)
        (Q.Mm1n.state_probability q n)
        p)
    probs;
  check_close ~tol:1e-12 "sums to one" 1. (Array.fold_left ( +. ) 0. probs);
  check_close ~tol:1e-12 "blocking is the last entry"
    (Q.Mm1n.blocking_probability q)
    probs.(6)

let mm1n_closed_form_continuous_near_rho_one () =
  (* The geometric-series Eq 12 degenerates as rho -> 1 (0/0); the
     closed form must approach its (N-1)/2-based limit smoothly from
     both sides rather than blowing up on the removable singularity. *)
  List.iter
    (fun capacity ->
      let at eps =
        let q = Q.Mm1n.create ~lambda:(1. +. eps) ~mu:1. ~capacity in
        Q.Mm1n.waiting_time_closed_form q
      in
      let limit = at 0. in
      List.iter
        (fun eps ->
          check_close ~tol:1e-4
            (Printf.sprintf "N=%d eps=%g" capacity eps)
            limit (at eps);
          check_close ~tol:1e-4
            (Printf.sprintf "N=%d eps=-%g" capacity eps)
            limit (at (-.eps)))
        [ 1e-7; 1e-9; 1e-12 ])
    [ 2; 5; 16; 64 ]

let mm1n_converges_to_mm1 () =
  (* N -> infinity recovers the infinite-buffer queue when stable. *)
  let lambda = 0.6 and mu = 1. in
  let finite = Q.Mm1n.create ~lambda ~mu ~capacity:500 in
  let infinite = Q.Mm1.create ~lambda ~mu in
  check_within ~pct:0.01 "Wq converges"
    (Q.Mm1.mean_waiting_time infinite)
    (Q.Mm1n.mean_waiting_time finite);
  Alcotest.(check bool)
    "blocking vanishes" true
    (Q.Mm1n.blocking_probability finite < 1e-9)

let mm1n_overload_carries_capacity () =
  (* Far beyond saturation the queue ships ~mu. *)
  let q = Q.Mm1n.create ~lambda:100. ~mu:1. ~capacity:16 in
  check_within ~pct:2. "carried rate ~ mu" 1. (Q.Mm1n.throughput q)

let mm1n_blocking_decreases_with_capacity () =
  let blocking n =
    Q.Mm1n.blocking_probability (Q.Mm1n.create ~lambda:0.9 ~mu:1. ~capacity:n)
  in
  let rec check n =
    if n <= 8 then begin
      Alcotest.(check bool)
        (Printf.sprintf "P_block(%d) > P_block(%d)" n (n + 1))
        true
        (blocking n > blocking (n + 1));
      check (n + 1)
    end
  in
  check 1

(* M/M/c *)

let mmc_reduces_to_mm1 () =
  let mmc = Q.Mmc.create ~lambda:0.7 ~mu:1. ~servers:1 in
  let mm1 = Q.Mm1.create ~lambda:0.7 ~mu:1. in
  check_close ~tol:1e-9 "Wq agreement"
    (Q.Mm1.mean_waiting_time mm1)
    (Q.Mmc.mean_waiting_time mmc)

let mmc_textbook () =
  (* Classic M/M/2 example: lambda = 2, mu = 1.5 -> rho = 2/3,
     C(2, 4/3) = 0.5333..., Wq = C/(c mu - lambda) = 0.5333/1. *)
  let q = Q.Mmc.create ~lambda:2. ~mu:1.5 ~servers:2 in
  check_close ~tol:1e-6 "erlang C" (8. /. 15.) (Q.Mmc.erlang_c q);
  check_close ~tol:1e-6 "Wq" (8. /. 15.) (Q.Mmc.mean_waiting_time q)

let mmc_pooling_helps () =
  (* 4 servers with one stream beat 1 fast-server-per-quarter-stream
     arrangement in queueing delay at the same total capacity. *)
  let pooled = Q.Mmc.create ~lambda:3.2 ~mu:1. ~servers:4 in
  let single = Q.Mm1.create ~lambda:0.8 ~mu:1. in
  Alcotest.(check bool)
    "pooling reduces waiting" true
    (Q.Mmc.mean_waiting_time pooled < Q.Mm1.mean_waiting_time single)

(* M/M/c/N *)

let mmcn_reduces_to_mm1n () =
  List.iter
    (fun rho ->
      let a = Q.Mmcn.create ~lambda:rho ~mu:1. ~servers:1 ~capacity:8 in
      let b = Q.Mm1n.create ~lambda:rho ~mu:1. ~capacity:8 in
      check_close ~tol:1e-9 "blocking" (Q.Mm1n.blocking_probability b)
        (Q.Mmcn.blocking_probability a);
      check_close ~tol:1e-9 "waiting" (Q.Mm1n.mean_waiting_time b)
        (Q.Mmcn.mean_waiting_time a))
    [ 0.2; 0.9; 1.5 ]

let mmcn_multi_server_waits_less () =
  (* Same utilization and capacity: more servers, less queueing. *)
  let single = Q.Mmcn.create ~lambda:0.9 ~mu:1. ~servers:1 ~capacity:64 in
  let multi = Q.Mmcn.create ~lambda:7.2 ~mu:1. ~servers:8 ~capacity:64 in
  check_close "same rho" (Q.Mmcn.utilization single) (Q.Mmcn.utilization multi);
  Alcotest.(check bool)
    "multi-server waits less" true
    (Q.Mmcn.mean_waiting_time multi < 0.5 *. Q.Mmcn.mean_waiting_time single)

let mmcn_probabilities_normalize () =
  let q = Q.Mmcn.create ~lambda:5. ~mu:1. ~servers:4 ~capacity:32 in
  let total = Array.fold_left ( +. ) 0. (Q.Mmcn.state_probabilities q) in
  check_close ~tol:1e-12 "sums to one" 1. total

let mmcn_extreme_load_stable () =
  (* The normalized-weights computation must not overflow. *)
  let q = Q.Mmcn.create ~lambda:1e6 ~mu:1. ~servers:2 ~capacity:256 in
  let p = Q.Mmcn.blocking_probability q in
  Alcotest.(check bool) "finite" true (Float.is_finite p);
  Alcotest.(check bool) "nearly always blocked" true (p > 0.99)

let mmcn_validation () =
  check_raises_invalid "capacity below servers" (fun () ->
      Q.Mmcn.create ~lambda:1. ~mu:1. ~servers:4 ~capacity:2)

(* M/G/1 (Pollaczek-Khinchine) *)

let mg1_recovers_mm1_and_md1 () =
  let lambda = 0.7 and mu = 1. in
  check_close ~tol:1e-12 "scv=1 is M/M/1"
    (Q.Mm1.mean_waiting_time (Q.Mm1.create ~lambda ~mu))
    (Q.Mg1.mean_waiting_time (Q.Mg1.create ~lambda ~mu ~scv:1.));
  check_close ~tol:1e-12 "scv=0 is M/D/1"
    (Q.Md1.mean_waiting_time (Q.Md1.create ~lambda ~mu))
    (Q.Mg1.mean_waiting_time (Q.Mg1.create ~lambda ~mu ~scv:0.))

let mg1_service_mix () =
  (* bimodal 64B/1500B services: scv > 1 and waiting exceeds M/M/1's *)
  let services = [ (64e-9, 0.5); (1500e-9, 0.5) ] in
  let q = Q.Mg1.of_service_mix ~lambda:1e6 ~services in
  Alcotest.(check bool) "bimodal scv > 0.8" true (q.Q.Mg1.scv > 0.8);
  Alcotest.(check bool)
    "underestimate factor matches scv" true
    (abs_float (Q.Mg1.mm1_underestimate q -. ((1. +. q.Q.Mg1.scv) /. 2.)) < 1e-12);
  check_close ~tol:1e-12 "mean service blended" (782e-9) (1. /. q.Q.Mg1.mu)

let mg1_waiting_grows_with_scv () =
  let wq scv = Q.Mg1.mean_waiting_time (Q.Mg1.create ~lambda:0.8 ~mu:1. ~scv) in
  Alcotest.(check bool) "monotone in scv" true (wq 0. < wq 1. && wq 1. < wq 4.);
  Alcotest.(check bool)
    "unstable diverges" true
    (Q.Mg1.mean_waiting_time (Q.Mg1.create ~lambda:2. ~mu:1. ~scv:1.) = infinity);
  check_raises_invalid "negative scv" (fun () ->
      Q.Mg1.create ~lambda:1. ~mu:1. ~scv:(-1.));
  check_raises_invalid "bad mix" (fun () ->
      Q.Mg1.of_service_mix ~lambda:1. ~services:[ (0., 1.) ])

(* Little's law *)

let littles_helpers () =
  check_close "L" 6. (Q.Littles.number_in_system ~arrival_rate:2. ~time_in_system:3.);
  check_close "W" 3. (Q.Littles.time_in_system ~arrival_rate:2. ~number_in_system:6.);
  check_close "lambda" 2.
    (Q.Littles.arrival_rate ~number_in_system:6. ~time_in_system:3.);
  Alcotest.(check bool)
    "consistent" true
    (Q.Littles.consistent ~arrival_rate:2. ~time_in_system:3. ~number_in_system:6.1
       ());
  Alcotest.(check bool)
    "inconsistent" false
    (Q.Littles.consistent ~arrival_rate:2. ~time_in_system:3. ~number_in_system:9.
       ())

(* Properties *)

let properties =
  [
    prop "mm1n waiting time is non-negative and finite"
      QCheck.(pair (float_range 0.01 5.) (int_range 1 64))
      (fun (rho, capacity) ->
        let q = Q.Mm1n.create ~lambda:rho ~mu:1. ~capacity in
        let w = Q.Mm1n.mean_waiting_time q in
        Float.is_finite w && w >= 0.);
    prop "mm1n closed form matches first principles"
      QCheck.(pair (float_range 0.01 3.) (int_range 1 64))
      (fun (rho, capacity) ->
        let q = Q.Mm1n.create ~lambda:rho ~mu:1. ~capacity in
        abs_float (Q.Mm1n.mean_waiting_time q -. Q.Mm1n.waiting_time_closed_form q)
        < 1e-6 *. Float.max 1. (Q.Mm1n.mean_waiting_time q));
    prop "mm1n blocking grows with load"
      QCheck.(triple (float_range 0.05 2.) (float_range 0.05 1.) (int_range 1 32))
      (fun (rho, bump, capacity) ->
        let p1 =
          Q.Mm1n.blocking_probability (Q.Mm1n.create ~lambda:rho ~mu:1. ~capacity)
        in
        let p2 =
          Q.Mm1n.blocking_probability
            (Q.Mm1n.create ~lambda:(rho +. bump) ~mu:1. ~capacity)
        in
        p2 >= p1 -. 1e-12);
    prop "mmcn effective rate never exceeds capacity or offered load"
      QCheck.(triple (float_range 0.1 20.) (int_range 1 8) (int_range 0 56))
      (fun (lambda, servers, extra) ->
        let capacity = servers + extra in
        let q = Q.Mmcn.create ~lambda ~mu:1. ~servers ~capacity in
        let carried = Q.Mmcn.effective_arrival_rate q in
        carried <= lambda +. 1e-9
        && carried <= (float_of_int servers *. 1.) +. 1e-9);
    prop "mmc waiting time decreases with extra servers"
      QCheck.(pair (float_range 0.1 0.95) (int_range 1 6))
      (fun (rho, servers) ->
        let lambda = rho *. float_of_int servers in
        let a = Q.Mmc.create ~lambda ~mu:1. ~servers in
        let b = Q.Mmc.create ~lambda ~mu:1. ~servers:(servers + 1) in
        Q.Mmc.mean_waiting_time b <= Q.Mmc.mean_waiting_time a +. 1e-12);
  ]

let suite =
  [
    quick "mm1: textbook numbers" mm1_textbook;
    quick "mm1: little's law" mm1_littles_law;
    quick "mm1: instability" mm1_unstable;
    quick "mm1: validation" mm1_validation;
    quick "mm1n: paper worked example" mm1n_paper_worked_example;
    quick "mm1n: Eq 12 identity" mm1n_closed_form_agrees;
    quick "mm1n: rho = 1 limit" mm1n_rho_one_limit;
    quick "mm1n: state-probability vector" mm1n_state_vector;
    quick "mm1n: closed form continuous near rho = 1"
      mm1n_closed_form_continuous_near_rho_one;
    quick "mm1n: converges to mm1" mm1n_converges_to_mm1;
    quick "mm1n: overload carries capacity" mm1n_overload_carries_capacity;
    quick "mm1n: blocking monotone in capacity" mm1n_blocking_decreases_with_capacity;
    quick "mmc: reduces to mm1" mmc_reduces_to_mm1;
    quick "mmc: textbook numbers" mmc_textbook;
    quick "mmc: pooling helps" mmc_pooling_helps;
    quick "mmcn: reduces to mm1n" mmcn_reduces_to_mm1n;
    quick "mmcn: multi-server waits less" mmcn_multi_server_waits_less;
    quick "mmcn: probabilities normalize" mmcn_probabilities_normalize;
    quick "mmcn: extreme load stays finite" mmcn_extreme_load_stable;
    quick "mmcn: validation" mmcn_validation;
    quick "mg1: recovers mm1 and md1" mg1_recovers_mm1_and_md1;
    quick "mg1: service mixes" mg1_service_mix;
    quick "mg1: scv monotonicity" mg1_waiting_grows_with_scv;
    quick "littles: helpers" littles_helpers;
  ]
  @ properties
