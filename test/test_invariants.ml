(* Tests for the runtime invariant checkers: the generic check
   primitives, the packet-fate ledger, the summary self-consistency
   laws, and the Netsim wiring. The checkers only earn their keep if
   they can actually FAIL, so half of these tests feed them corrupted
   data and assert the right law fires. *)

open Helpers
module S = Lognic_sim
module I = Lognic_sim.Invariants
module G = Lognic.Graph
module U = Lognic.Units
module T = Lognic.Traffic

let hw = Lognic.Params.hardware ~bw_interface:(50. *. U.gbps) ~bw_memory:(60. *. U.gbps)

let pipeline ?(queue = 32) ?(ip_rate = 4. *. U.gbps) () =
  let svc t = G.service ~throughput:t () in
  let g = G.empty in
  let g, i = G.add_vertex ~kind:G.Ingress ~label:"in" ~service:(svc (25. *. U.gbps)) g in
  let g, w =
    G.add_vertex ~kind:G.Ip ~label:"ip"
      ~service:(G.service ~throughput:ip_rate ~queue_capacity:queue ())
      g
  in
  let g, e = G.add_vertex ~kind:G.Egress ~label:"out" ~service:(svc (25. *. U.gbps)) g in
  let g = G.add_edge ~delta:1. ~alpha:1. ~src:i ~dst:w g in
  let g = G.add_edge ~delta:1. ~alpha:1. ~src:w ~dst:e g in
  g

let config check_invariants =
  S.Netsim.Config.(
    default |> with_horizon 2e-3 |> with_invariants check_invariants)

let traffic = T.make ~rate:(3. *. U.gbps) ~packet_size:1500.

let laws report = List.map (fun (v : I.violation) -> v.law) report.I.violations

(* --- generic check primitives --- *)

let check_close_basics () =
  let t = I.create () in
  I.check_close t ~law:"l" ~entity:"e" ~time:0. ~expected:1. ~actual:1. "ok";
  I.check_close t ~law:"l" ~entity:"e" ~time:0. ~expected:1e12 ~actual:(1e12 +. 1.)
    "relative tolerance scales with magnitude";
  Alcotest.(check int) "no violations yet" 0 (I.report t).I.total_violations;
  I.check_close t ~law:"l" ~entity:"e" ~time:3. ~expected:1. ~actual:1.5 "off";
  I.check_close t ~law:"l" ~entity:"e" ~time:4. ~expected:1. ~actual:Float.nan
    "non-finite actual always fails";
  let r = I.report t in
  Alcotest.(check int) "checks counted" 4 r.I.checks;
  Alcotest.(check int) "two failures" 2 r.I.total_violations;
  let v = List.hd r.I.violations in
  Alcotest.(check string) "law" "l" v.I.law;
  Alcotest.(check (float 0.)) "time" 3. v.I.time;
  check_close "expected stored" 1. v.I.expected;
  check_close "actual stored" 1.5 v.I.actual

let check_bound_and_count () =
  let t = I.create () in
  I.check_bound t ~law:"b" ~entity:"e" ~time:0. ~limit:10. ~actual:10. "at limit";
  I.check_bound t ~law:"b" ~entity:"e" ~time:0. ~limit:10. ~actual:9. "below";
  I.check_count t ~law:"c" ~entity:"e" ~time:0. ~expected:7 ~actual:7 "equal";
  Alcotest.(check int) "all pass" 0 (I.report t).I.total_violations;
  I.check_bound t ~law:"b" ~entity:"e" ~time:0. ~limit:10. ~actual:10.1 "above";
  I.check_count t ~law:"c" ~entity:"e" ~time:0. ~expected:7 ~actual:8 "off by one";
  I.check_nonneg t ~law:"n" ~entity:"e" ~time:0. ~actual:(-0.5) "negative";
  let r = I.report t in
  Alcotest.(check int) "three failures" 3 r.I.total_violations;
  Alcotest.(check (list string)) "laws in detection order" [ "b"; "c"; "n" ] (laws r)

let violation_cap () =
  let t = I.create () in
  for i = 1 to 250 do
    I.check_count t ~law:"cap" ~entity:"e" ~time:(float_of_int i) ~expected:0
      ~actual:i "always wrong"
  done;
  let r = I.report t in
  Alcotest.(check int) "every failure counted" 250 r.I.total_violations;
  Alcotest.(check int) "recorded list capped" I.max_recorded
    (List.length r.I.violations);
  (* the cap keeps the FIRST violations, the ones closest to the cause *)
  check_close "first recorded is the earliest" 1. (List.hd r.I.violations).I.time

(* --- packet-fate ledger --- *)

let fate_ledger () =
  let t = I.create () in
  I.packet_injected t ~id:1 ~time:0.;
  I.packet_injected t ~id:2 ~time:0.1;
  I.packet_injected t ~id:3 ~time:0.2;
  I.packet_delivered t ~id:1 ~time:0.5;
  I.packet_dropped t ~id:2 ~time:0.6;
  Alcotest.(check int) "injected" 3 (I.injected t);
  Alcotest.(check int) "delivered" 1 (I.delivered t);
  Alcotest.(check int) "dropped" 1 (I.dropped t);
  Alcotest.(check int) "in flight" 1 (I.in_flight t);
  I.check_conservation t ~time:1. ~generated:3;
  Alcotest.(check int) "books balance" 0 (I.report t).I.total_violations;
  I.check_conservation t ~time:1. ~generated:4;
  Alcotest.(check bool) "generator disagreement caught" true
    (List.mem "packet-conservation" (laws (I.report t)))

let fate_double_delivery () =
  let t = I.create () in
  I.packet_injected t ~id:7 ~time:0.;
  I.packet_delivered t ~id:7 ~time:0.5;
  Alcotest.(check int) "clean so far" 0 (I.report t).I.total_violations;
  I.packet_delivered t ~id:7 ~time:0.6;
  I.packet_dropped t ~id:99 ~time:0.7;
  let r = I.report t in
  Alcotest.(check int) "double delivery and orphan drop" 2 r.I.total_violations;
  Alcotest.(check (list string)) "both are fate violations"
    [ "packet-fate"; "packet-fate" ] (laws r)

let event_monotonicity () =
  let t = I.create () in
  List.iter (I.observe_event_time t) [ 0.; 0.5; 0.5; 1.0 ];
  Alcotest.(check int) "non-decreasing times pass" 0
    (I.report t).I.total_violations;
  I.observe_event_time t 0.9;
  Alcotest.(check (list string)) "time travel caught" [ "event-monotonicity" ]
    (laws (I.report t))

(* --- summary self-consistency: corrupted telemetry must FAIL --- *)

let clean_summary () =
  let m = S.Netsim.run_single ~config:(config false) (pipeline ()) ~hw ~traffic in
  (m.S.Netsim.summary, (config false).S.Netsim.duration)

let corrupt_summary_is_caught () =
  let s, horizon = clean_summary () in
  let fails ~law s' =
    let t = I.create () in
    I.check_summary t ~horizon s';
    Alcotest.(check bool) (law ^ " fires") true (List.mem law (laws (I.report t)))
  in
  let passes s' =
    let t = I.create () in
    I.check_summary t ~horizon s';
    Alcotest.(check int) "clean summary passes" 0 (I.report t).I.total_violations
  in
  passes s;
  fails ~law:"throughput" { s with throughput = s.throughput *. 2. };
  fails ~law:"packet-rate" { s with packet_rate = s.packet_rate +. 1e4 };
  fails ~law:"loss-rate" { s with loss_rate = 1.5 };
  fails ~law:"window" { s with window = horizon *. 2. };
  fails ~law:"latency-terms"
    {
      s with
      latency_terms = { s.latency_terms with service = s.latency_terms.service +. 1e-3 };
    };
  fails ~law:"latency-order" { s with p50_latency = s.p99_latency *. 2. };
  fails ~law:"drop-breakdown" { s with dropped_packets = s.dropped_packets + 1 };
  fails ~law:"class-conservation" { s with delivered_packets = s.delivered_packets + 1 }

(* --- Netsim wiring --- *)

let netsim_clean_run_has_report () =
  let m = S.Netsim.run_single ~config:(config true) (pipeline ()) ~hw ~traffic in
  match m.S.Netsim.invariants with
  | None -> Alcotest.fail "check_invariants=true must attach a report"
  | Some r ->
    Alcotest.(check bool) "thousands of checks ran" true (r.I.checks > 1000);
    Alcotest.(check int) "a healthy run violates nothing" 0 r.I.total_violations;
    Alcotest.(check bool) "ok" true (I.ok r)

let netsim_disabled_run_has_none () =
  let m = S.Netsim.run_single ~config:(config false) (pipeline ()) ~hw ~traffic in
  Alcotest.(check bool) "no report when disabled" true
    (m.S.Netsim.invariants = None)

let netsim_json_identical_on_off () =
  let json check =
    S.Telemetry.Json.to_string
      (S.Netsim.measurement_to_json
         (S.Netsim.run_single ~config:(config check) (pipeline ()) ~hw ~traffic))
  in
  Alcotest.(check string) "observation-only: JSON byte-identical" (json false)
    (json true)

let netsim_overloaded_run_is_still_lawful () =
  (* saturate the queue so drops and deep queues exercise every law *)
  let m =
    S.Netsim.run_single ~config:(config true)
      (pipeline ~queue:4 ~ip_rate:(1. *. U.gbps) ())
      ~hw
      ~traffic:(T.make ~rate:(8. *. U.gbps) ~packet_size:1500.)
  in
  Alcotest.(check bool) "drops happened" true
    (m.S.Netsim.summary.S.Telemetry.dropped_packets > 0);
  match m.S.Netsim.invariants with
  | None -> Alcotest.fail "report expected"
  | Some r -> Alcotest.(check int) "overload violates no law" 0 r.I.total_violations

let netsim_faulted_run_is_still_lawful () =
  let faults =
    [
      S.Faults.drop_burst ~probability:0.3 ~start:5e-4 ~stop:1e-3;
      S.Faults.queue_shrunk ~vertex:"ip" ~capacity:2 ~start:1e-3 ~stop:1.5e-3;
    ]
  in
  let spec =
    S.Netsim.Run.single ~config:(config true) ~faults (pipeline ()) ~hw ~traffic
  in
  let m = S.Netsim.execute spec in
  match m.S.Netsim.invariants with
  | None -> Alcotest.fail "report expected"
  | Some r -> Alcotest.(check int) "faulted run violates no law" 0 r.I.total_violations

(* --- JSON shape --- *)

let report_json_shape () =
  let t = I.create () in
  I.check_count t ~law:"l" ~entity:"e" ~time:1.5 ~expected:1 ~actual:2 "broken";
  let j = I.report_to_json (I.report t) in
  let module J = S.Telemetry.Json in
  Alcotest.(check (option (float 0.))) "checks" (Some 1.)
    (match J.member "checks" j with Some (J.Num n) -> Some n | _ -> None);
  Alcotest.(check (option (float 0.))) "violations" (Some 1.)
    (match J.member "violations" j with Some (J.Num n) -> Some n | _ -> None);
  match J.member "recorded" j with
  | Some (J.Arr [ v ]) ->
    Alcotest.(check bool) "law field" true
      (J.member "law" v = Some (J.Str "l"));
    (* the export must parse back: it is embedded in `lognic check --json` *)
    let roundtrip = J.of_string (J.to_string j) in
    Alcotest.(check bool) "parses back" true (Result.is_ok roundtrip)
  | _ -> Alcotest.fail "recorded must hold the violation"

let suite =
  [
    quick "invariants: check_close basics" check_close_basics;
    quick "invariants: check_bound / check_count / check_nonneg" check_bound_and_count;
    quick "invariants: violation recording is capped" violation_cap;
    quick "invariants: packet-fate ledger" fate_ledger;
    quick "invariants: double delivery is caught" fate_double_delivery;
    quick "invariants: event-time monotonicity" event_monotonicity;
    quick "invariants: corrupted summaries are caught" corrupt_summary_is_caught;
    quick "invariants: clean netsim run attaches an ok report" netsim_clean_run_has_report;
    quick "invariants: disabled flag attaches nothing" netsim_disabled_run_has_none;
    quick "invariants: JSON identical with checks on/off" netsim_json_identical_on_off;
    quick "invariants: overloaded run is lawful" netsim_overloaded_run_is_still_lawful;
    quick "invariants: faulted run is lawful" netsim_faulted_run_is_still_lawful;
    quick "invariants: report JSON shape" report_json_shape;
  ]
