(* Tests for the analytical model proper: traffic, roofline,
   throughput (Eqs 1-4), latency (Eqs 5-12), and the estimator. *)

open Helpers
module G = Lognic.Graph
module U = Lognic.Units
module T = Lognic.Traffic

let svc ?parallelism ?queue_capacity ?overhead ?accel ?partition throughput =
  G.service ?parallelism ?queue_capacity ?overhead ?accel ?partition ~throughput ()

let hw = Lognic.Params.hardware ~bw_interface:(8. *. U.gbps) ~bw_memory:(16. *. U.gbps)

(* ingress(10G) -> ip(2G) -> egress(10G), interface on both hops *)
let simple_chain ?(ip_throughput = 2. *. U.gbps) ?(alpha = 1.) ?(queue = 32) () =
  let g = G.empty in
  let g, i =
    G.add_vertex ~kind:G.Ingress ~label:"in" ~service:(svc (10. *. U.gbps)) g
  in
  let g, w =
    G.add_vertex ~kind:G.Ip ~label:"ip"
      ~service:(svc ~queue_capacity:queue ip_throughput)
      g
  in
  let g, e =
    G.add_vertex ~kind:G.Egress ~label:"out" ~service:(svc (10. *. U.gbps)) g
  in
  let g = G.add_edge ~delta:1. ~alpha ~src:i ~dst:w g in
  let g = G.add_edge ~delta:1. ~alpha ~src:w ~dst:e g in
  (g, i, w, e)

(* Units *)

let units_conversions () =
  check_close "gbps" 1.25e9 (10. *. U.gbps);
  check_close "roundtrip gbps" 10. (U.to_gbps (10. *. U.gbps));
  check_close "usec" 5e-6 (5. *. U.usec);
  check_close "roundtrip usec" 5. (U.to_usec 5e-6);
  check_close "mops" 2e6 (2. *. U.mops);
  check_close "kib" 4096. (4. *. U.kib);
  check_close "mtu" 1500. U.mtu

(* Traffic *)

let traffic_basics () =
  let t = T.make ~rate:(1.2e9 /. 8. *. 10.) ~packet_size:1500. in
  check_close "packet rate" (t.T.rate /. 1500.) (T.packet_rate t);
  check_raises_invalid "zero rate" (fun () -> T.make ~rate:0. ~packet_size:64.);
  check_raises_invalid "zero size" (fun () -> T.make ~rate:1. ~packet_size:0.)

let traffic_mix () =
  let mix =
    T.mix_of_sizes ~rate:1000. ~sizes:[ (64., 1.); (1500., 1.) ]
  in
  check_close "total rate preserved" 1000. (T.total_rate mix);
  check_close "equal-bandwidth mean size" 782. (T.mean_packet_size mix);
  (* the per-packet mean is harmonic in the byte weights: each class
     carries 500 B/s, so packets/s = 500/64 + 500/1500 and the mean
     size is 1000 / (500/64 + 500/1500) ≈ 122.76 — far from 782 *)
  check_close ~tol:1e-2 "per-packet mean size" 122.76
    (T.mean_packet_size_by_packets mix);
  check_close "packet-rate consistency"
    (T.total_rate mix /. T.mean_packet_size_by_packets mix)
    (T.total_packet_rate mix);
  let normalized = T.normalize_weights mix in
  check_close "weights sum to 1" 1.
    (List.fold_left (fun acc (_, w) -> acc +. w) 0. normalized);
  check_raises_invalid "empty mix" (fun () -> T.mix []);
  check_raises_invalid "negative weight" (fun () ->
      T.mix [ (T.make ~rate:1. ~packet_size:64., -1.) ])

(* Roofline *)

let roofline_regimes () =
  let r =
    Lognic.Roofline.create ~label:"engine" ~peak_ops:2e6
      ~ceilings:
        [
          { Lognic.Roofline.name = "cmi"; bandwidth = 6.25e9 };
          { Lognic.Roofline.name = "io"; bandwidth = 5e9 };
        ]
  in
  (* low intensity: tightest bandwidth ceiling binds *)
  check_close "io-bound ops" (5e9 *. 1e-4)
    (Lognic.Roofline.attainable_ops r ~intensity:1e-4);
  Alcotest.(check string)
    "binding ceiling" "io"
    (Lognic.Roofline.binding_ceiling r ~intensity:1e-4);
  (* high intensity: compute roof binds *)
  check_close "compute-bound ops" 2e6 (Lognic.Roofline.attainable_ops r ~intensity:1.);
  Alcotest.(check string)
    "compute binding" "compute"
    (Lognic.Roofline.binding_ceiling r ~intensity:1.);
  check_close "knee" (2e6 /. 5e9) (Lognic.Roofline.knee r);
  check_close "bytes view" (2e6 /. 1.)
    (Lognic.Roofline.attainable_bytes r ~intensity:1.);
  check_close "ops per packet conversion" (2. /. 1500.)
    (Lognic.Roofline.ops_per_packet ~ops:2. ~packet_size:1500.)

let roofline_validation () =
  check_raises_invalid "no ceilings" (fun () ->
      Lognic.Roofline.create ~label:"x" ~peak_ops:1. ~ceilings:[]);
  check_raises_invalid "bad peak" (fun () ->
      Lognic.Roofline.create ~label:"x" ~peak_ops:0.
        ~ceilings:[ { Lognic.Roofline.name = "m"; bandwidth = 1. } ])

(* Throughput (Eqs 1-4) *)

let throughput_ip_bound () =
  let g, _, w, _ = simple_chain () in
  let traffic = T.make ~rate:(5. *. U.gbps) ~packet_size:1500. in
  let r = Lognic.Throughput.evaluate g ~hw ~traffic in
  check_close "capacity = slowest IP" (2. *. U.gbps) r.capacity;
  check_close "attained clipped" (2. *. U.gbps) r.attained;
  (match r.bottleneck with
  | Lognic.Throughput.Vertex_bound id -> Alcotest.(check int) "ip is bottleneck" w id
  | _ -> Alcotest.fail "expected vertex bound")

let throughput_offered_bound () =
  let g, _, _, _ = simple_chain () in
  let traffic = T.make ~rate:(1. *. U.gbps) ~packet_size:1500. in
  let r = Lognic.Throughput.evaluate g ~hw ~traffic in
  check_close "attained = offered" (1. *. U.gbps) r.attained;
  Alcotest.(check bool)
    "offered load is the binding constraint" true
    (r.bottleneck = Lognic.Throughput.Offered_load)

let throughput_interface_bound () =
  (* alpha = 1 on two edges -> interface ceiling BW_INTF / 2 = 4G < IP 6G *)
  let g, _, _, _ = simple_chain ~ip_throughput:(6. *. U.gbps) () in
  let traffic = T.make ~rate:(10. *. U.gbps) ~packet_size:1500. in
  let r = Lognic.Throughput.evaluate g ~hw ~traffic in
  check_close "interface cap" (4. *. U.gbps) r.capacity;
  Alcotest.(check bool)
    "interface binds" true
    (r.bottleneck = Lognic.Throughput.Interface_bound)

let throughput_dedicated_edge_bound () =
  let g, i, w, _ = simple_chain ~ip_throughput:(6. *. U.gbps) ~alpha:0. () in
  let g = G.set_edge_params ~bandwidth:(Some (1. *. U.gbps)) ~src:i ~dst:w g in
  let traffic = T.make ~rate:(10. *. U.gbps) ~packet_size:1500. in
  let r = Lognic.Throughput.evaluate g ~hw ~traffic in
  check_close "edge cap" (1. *. U.gbps) r.capacity;
  Alcotest.(check bool)
    "edge binds" true
    (r.bottleneck = Lognic.Throughput.Edge_bound (i, w))

let throughput_delta_scaling () =
  (* an IP seeing only delta = 0.2 of the workload supports 5x its rate *)
  let g, i, w, e = simple_chain ~alpha:0. () in
  let g = G.set_edge_params ~delta:0.2 ~src:i ~dst:w g in
  let g = G.set_edge_params ~delta:0.2 ~src:w ~dst:e g in
  let traffic = T.make ~rate:(20. *. U.gbps) ~packet_size:1500. in
  let r = Lognic.Throughput.evaluate g ~hw ~traffic in
  check_close "delta scales vertex cap" (10. *. U.gbps) r.capacity

let throughput_partition_scales () =
  let g, _, w, _ = simple_chain ~alpha:0. () in
  let g = G.update_service g w (fun s -> { s with G.partition = 0.5 }) in
  let traffic = T.make ~rate:(10. *. U.gbps) ~packet_size:1500. in
  let r = Lognic.Throughput.evaluate g ~hw ~traffic in
  check_close "gamma halves capacity" (1. *. U.gbps) r.capacity

let throughput_fanout_shares_load () =
  (* two parallel 2G IPs with a 50/50 split carry 4G together *)
  let g = G.empty in
  let g, i = G.add_vertex ~kind:G.Ingress ~label:"in" ~service:(svc (10. *. U.gbps)) g in
  let g, x = G.add_vertex ~kind:G.Ip ~label:"x" ~service:(svc (2. *. U.gbps)) g in
  let g, y = G.add_vertex ~kind:G.Ip ~label:"y" ~service:(svc (2. *. U.gbps)) g in
  let g, e = G.add_vertex ~kind:G.Egress ~label:"out" ~service:(svc (10. *. U.gbps)) g in
  let g = G.add_edge ~delta:0.5 ~src:i ~dst:x g in
  let g = G.add_edge ~delta:0.5 ~src:i ~dst:y g in
  let g = G.add_edge ~delta:0.5 ~src:x ~dst:e g in
  let g = G.add_edge ~delta:0.5 ~src:y ~dst:e g in
  let traffic = T.make ~rate:(10. *. U.gbps) ~packet_size:1500. in
  let r = Lognic.Throughput.evaluate g ~hw ~traffic in
  check_close "fan-out doubles capacity" (4. *. U.gbps) r.capacity

let throughput_invalid_graph_rejected () =
  let g = G.empty in
  let g, _ = G.add_vertex ~kind:G.Ip ~label:"lonely" ~service:(svc 1.) g in
  check_raises_invalid "invalid graph" (fun () ->
      Lognic.Throughput.evaluate g ~hw
        ~traffic:(T.make ~rate:1. ~packet_size:64.))

(* Latency (Eqs 5-12) *)

let latency_terms_low_load () =
  (* At very low load, latency ~ serialization + service + transfer. *)
  let g, _, _, _ = simple_chain ~alpha:1. () in
  let traffic = T.make ~rate:(0.01 *. U.gbps) ~packet_size:1500. in
  let r = Lognic.Latency.evaluate g ~hw ~traffic in
  let serialization = 1500. /. (10. *. U.gbps) in
  let service = 1500. /. (2. *. U.gbps) in
  let transfer = 2. *. (1500. /. (8. *. U.gbps)) in
  check_within ~pct:2. "near-zero-load latency"
    ((2. *. serialization) +. service +. transfer)
    r.mean

let latency_queueing_grows_with_load () =
  let g, _, _, _ = simple_chain () in
  let at rate =
    (Lognic.Latency.evaluate g ~hw ~traffic:(T.make ~rate ~packet_size:1500.)).mean
  in
  let l1 = at (0.5 *. U.gbps) and l2 = at (1.5 *. U.gbps) and l3 = at (1.9 *. U.gbps) in
  Alcotest.(check bool) "monotone in load" true (l1 < l2 && l2 < l3)

let latency_overhead_term () =
  let g, _, w, _ = simple_chain ~alpha:0. () in
  let traffic = T.make ~rate:(0.1 *. U.gbps) ~packet_size:1500. in
  let base = (Lognic.Latency.evaluate g ~hw ~traffic).mean in
  let g = G.update_service g w (fun s -> { s with G.overhead = 10. *. U.usec }) in
  let with_overhead = (Lognic.Latency.evaluate g ~hw ~traffic).mean in
  check_close ~tol:1e-9 "O adds linearly" (10. *. U.usec) (with_overhead -. base)

let latency_accel_divides_service () =
  let g, _, w, _ = simple_chain ~alpha:0. () in
  let traffic = T.make ~rate:(0.01 *. U.gbps) ~packet_size:1500. in
  let base = Lognic.Latency.vertex_service_time g ~traffic w in
  let g2 = G.update_service g w (fun s -> { s with G.accel = 2. }) in
  let faster = Lognic.Latency.vertex_service_time g2 ~traffic w in
  check_close ~tol:1e-9 "A = 2 halves C" (base /. 2.) faster

let latency_parallelism_scales_service () =
  (* Eq 7: D multiplies per-request service at constant aggregate P. *)
  let g, _, w, _ = simple_chain ~alpha:0. () in
  let traffic = T.make ~rate:(0.01 *. U.gbps) ~packet_size:1500. in
  let base = Lognic.Latency.vertex_service_time g ~traffic w in
  let g2 = G.update_service g w (fun s -> { s with G.parallelism = 4 }) in
  check_close ~tol:1e-9 "D = 4 quadruples C" (4. *. base)
    (Lognic.Latency.vertex_service_time g2 ~traffic w)

let latency_transfer_media () =
  let g, i, w, _ = simple_chain ~alpha:0.5 () in
  let g = G.set_edge_params ~beta:0.25 ~src:i ~dst:w g in
  let traffic = T.make ~rate:(0.1 *. U.gbps) ~packet_size:1000. in
  let e = Option.get (G.edge g ~src:i ~dst:w) in
  check_close ~tol:1e-12 "Eq 7 transfer"
    ((1000. *. 0.5 /. (8. *. U.gbps)) +. (1000. *. 0.25 /. (16. *. U.gbps)))
    (Lognic.Latency.edge_transfer_time g ~hw ~traffic e)

let latency_path_weights () =
  let g = G.empty in
  let g, i = G.add_vertex ~kind:G.Ingress ~label:"in" ~service:(svc (10. *. U.gbps)) g in
  let g, x = G.add_vertex ~kind:G.Ip ~label:"x" ~service:(svc (5. *. U.gbps)) g in
  let g, y = G.add_vertex ~kind:G.Ip ~label:"y" ~service:(svc (5. *. U.gbps)) g in
  let g, e = G.add_vertex ~kind:G.Egress ~label:"out" ~service:(svc (10. *. U.gbps)) g in
  let g = G.add_edge ~delta:0.75 ~src:i ~dst:x g in
  let g = G.add_edge ~delta:0.25 ~src:i ~dst:y g in
  let g = G.add_edge ~delta:0.75 ~src:x ~dst:e g in
  let g = G.add_edge ~delta:0.25 ~src:y ~dst:e g in
  let weights = Lognic.Latency.path_weights g in
  Alcotest.(check int) "two paths" 2 (List.length weights);
  List.iter
    (fun (path, weight) ->
      if List.mem x path then check_close ~tol:1e-9 "x path weight" 0.75 weight
      else check_close ~tol:1e-9 "y path weight" 0.25 weight)
    weights

let latency_queue_models_ordering () =
  (* At moderate load: no-queueing < mmcn(D=1) = mm1n ~ mm1 within
     blocking effects; mm1 >= mm1n because the finite queue sheds. *)
  let g, _, _, _ = simple_chain ~queue:16 () in
  let traffic = T.make ~rate:(1.8 *. U.gbps) ~packet_size:1500. in
  let mean model = (Lognic.Latency.evaluate ~model g ~hw ~traffic).mean in
  let none = mean Lognic.Latency.No_queueing in
  let mm1n = mean Lognic.Latency.Mm1n_model in
  let mmcn = mean Lognic.Latency.Mmcn_model in
  let mm1 = mean Lognic.Latency.Mm1_model in
  Alcotest.(check bool) "queueing adds latency" true (none < mm1n);
  check_close ~tol:1e-9 "mmcn = mm1n when D = 1" mm1n mmcn;
  Alcotest.(check bool) "finite queue sheds load" true (mm1n <= mm1)

let latency_mm1_diverges_at_saturation () =
  let g, _, _, _ = simple_chain () in
  let traffic = T.make ~rate:(2.5 *. U.gbps) ~packet_size:1500. in
  let r = Lognic.Latency.evaluate ~model:Lognic.Latency.Mm1_model g ~hw ~traffic in
  Alcotest.(check bool) "infinite latency" true (r.mean = infinity);
  let finite = Lognic.Latency.evaluate g ~hw ~traffic in
  Alcotest.(check bool) "mm1n stays finite" true (Float.is_finite finite.mean)

let latency_carried_rate () =
  let g, _, _, _ = simple_chain ~queue:4 () in
  (* overload: drops must discount the carried rate *)
  let traffic = T.make ~rate:(4. *. U.gbps) ~packet_size:1500. in
  let r = Lognic.Latency.evaluate g ~hw ~traffic in
  Alcotest.(check bool)
    "carried below offered" true
    (r.carried_rate < traffic.T.rate);
  Alcotest.(check bool)
    "carried near capacity" true
    (r.carried_rate > 1.5 *. U.gbps && r.carried_rate < 2.4 *. U.gbps)

let latency_transparent_vertices () =
  let g = G.empty in
  let g, i = G.add_vertex ~kind:G.Ingress ~label:"in" ~service:G.default_service g in
  let g, e = G.add_vertex ~kind:G.Egress ~label:"out" ~service:G.default_service g in
  let g = G.add_edge ~delta:1. ~src:i ~dst:e g in
  let traffic = T.make ~rate:1e9 ~packet_size:1500. in
  let r = Lognic.Latency.evaluate g ~hw ~traffic in
  check_close "transparent graph has zero latency" 0. r.mean

(* Estimate facade *)

let estimate_consistency () =
  let g, _, _, _ = simple_chain () in
  let traffic = T.make ~rate:(1. *. U.gbps) ~packet_size:1500. in
  let report = Lognic.Estimate.run g ~hw ~traffic in
  check_close "throughput thread"
    (Lognic.Throughput.evaluate g ~hw ~traffic).attained
    report.throughput.attained;
  check_close "latency thread" (Lognic.Latency.evaluate g ~hw ~traffic).mean
    report.latency.mean

let estimate_saturation_sweep () =
  let g, _, _, _ = simple_chain () in
  let sweep =
    Lognic.Estimate.saturation_sweep ~points:10 g ~hw ~packet_size:1500.
      ~max_rate:(2.2 *. U.gbps)
  in
  Alcotest.(check int) "point count" 10 (List.length sweep);
  let latencies = List.map (fun (_, _, l) -> l) sweep in
  let sorted = List.sort compare latencies in
  Alcotest.(check (list (float 1e-12))) "latency monotone over the sweep" sorted latencies;
  List.iter
    (fun (offered, attained, _) ->
      Alcotest.(check bool) "attained <= offered" true (attained <= offered +. 1e-6))
    sweep

(* Params table *)

let printers_render () =
  (* the pp functions back the CLI's output; they must render the facts
     a user relies on without raising *)
  let g, _, _, _ = simple_chain () in
  let traffic = T.make ~rate:(1. *. U.gbps) ~packet_size:1500. in
  let report = Lognic.Estimate.run g ~hw ~traffic in
  let rendered = Fmt.str "%a" (Lognic.Estimate.pp_report g) report in
  List.iter
    (fun fragment ->
      Alcotest.(check bool)
        (Printf.sprintf "report mentions %S" fragment)
        true
        (contains_substring rendered fragment))
    [ "capacity"; "bottleneck"; "mean latency"; "carried rate"; "path" ];
  let g_rendered = Fmt.str "%a" G.pp g in
  Alcotest.(check bool) "graph pp mentions vertices" true
    (contains_substring g_rendered "ingress")

let params_table () =
  Alcotest.(check int) "13 rows like Table 2" 13 (List.length Lognic.Params.table2);
  check_raises_invalid "bad hardware" (fun () ->
      Lognic.Params.hardware ~bw_interface:0. ~bw_memory:1.)

(* Properties *)

let properties =
  [
    prop "capacity is monotone in IP throughput"
      QCheck.(pair (float_range 0.1 10.) (float_range 0.1 10.))
      (fun (p1, p2) ->
        let cap p =
          let g, _, _, _ = simple_chain ~ip_throughput:(p *. U.gbps) () in
          Lognic.Throughput.capacity g ~hw
        in
        let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
        cap lo <= cap hi +. 1e-6);
    prop "attained never exceeds offered or capacity"
      QCheck.(pair (float_range 0.05 20.) (float_range 0.1 8.))
      (fun (rate_gbps, ip_gbps) ->
        let g, _, _, _ = simple_chain ~ip_throughput:(ip_gbps *. U.gbps) () in
        let traffic = T.make ~rate:(rate_gbps *. U.gbps) ~packet_size:1500. in
        let r = Lognic.Throughput.evaluate g ~hw ~traffic in
        r.attained <= traffic.T.rate +. 1e-6 && r.attained <= r.capacity +. 1e-6);
    prop "latency at least the no-queueing floor"
      QCheck.(float_range 0.05 1.9)
      (fun rate_gbps ->
        let g, _, _, _ = simple_chain () in
        let traffic = T.make ~rate:(rate_gbps *. U.gbps) ~packet_size:1500. in
        let queued = (Lognic.Latency.evaluate g ~hw ~traffic).mean in
        let floor =
          (Lognic.Latency.evaluate ~model:Lognic.Latency.No_queueing g ~hw ~traffic)
            .mean
        in
        queued >= floor -. 1e-12);
    prop "path weights are a probability distribution"
      QCheck.(pair (float_range 0.01 1.) (float_range 0.01 1.))
      (fun (d1, d2) ->
        let g = G.empty in
        let g, i =
          G.add_vertex ~kind:G.Ingress ~label:"in" ~service:(svc 1e9) g
        in
        let g, x = G.add_vertex ~kind:G.Ip ~label:"x" ~service:(svc 1e9) g in
        let g, y = G.add_vertex ~kind:G.Ip ~label:"y" ~service:(svc 1e9) g in
        let g, e = G.add_vertex ~kind:G.Egress ~label:"out" ~service:(svc 1e9) g in
        let g = G.add_edge ~delta:d1 ~src:i ~dst:x g in
        let g = G.add_edge ~delta:d2 ~src:i ~dst:y g in
        let g = G.add_edge ~delta:d1 ~src:x ~dst:e g in
        let g = G.add_edge ~delta:d2 ~src:y ~dst:e g in
        let weights = List.map snd (Lognic.Latency.path_weights g) in
        abs_float (List.fold_left ( +. ) 0. weights -. 1.) < 1e-9
        && List.for_all (fun w -> w >= 0.) weights);
  ]

let suite =
  [
    quick "units: conversions" units_conversions;
    quick "traffic: basics" traffic_basics;
    quick "traffic: mixes" traffic_mix;
    quick "roofline: regimes" roofline_regimes;
    quick "roofline: validation" roofline_validation;
    quick "throughput: IP bound" throughput_ip_bound;
    quick "throughput: offered bound" throughput_offered_bound;
    quick "throughput: interface bound" throughput_interface_bound;
    quick "throughput: dedicated edge bound" throughput_dedicated_edge_bound;
    quick "throughput: delta scaling" throughput_delta_scaling;
    quick "throughput: partition scaling" throughput_partition_scales;
    quick "throughput: fan-out shares load" throughput_fanout_shares_load;
    quick "throughput: rejects invalid graphs" throughput_invalid_graph_rejected;
    quick "latency: low-load decomposition" latency_terms_low_load;
    quick "latency: queueing grows with load" latency_queueing_grows_with_load;
    quick "latency: overhead term" latency_overhead_term;
    quick "latency: acceleration factor" latency_accel_divides_service;
    quick "latency: parallelism scales service" latency_parallelism_scales_service;
    quick "latency: Eq 7 transfer time" latency_transfer_media;
    quick "latency: path weights" latency_path_weights;
    quick "latency: queue-model ordering" latency_queue_models_ordering;
    quick "latency: mm1 divergence" latency_mm1_diverges_at_saturation;
    quick "latency: carried rate under overload" latency_carried_rate;
    quick "latency: transparent vertices" latency_transparent_vertices;
    quick "estimate: thread consistency" estimate_consistency;
    quick "estimate: saturation sweep" estimate_saturation_sweep;
    quick "printers: render key facts" printers_render;
    quick "params: table 2" params_table;
  ]
  @ properties

