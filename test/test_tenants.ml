(* Multi-tenant SR-IOV layer: spec/set validation and canonicalization,
   the alias-table tenant draw, the two-stage hierarchical arbiter's
   grant order, per-VF attribution closure against the aggregate
   telemetry, and the shared colon-spec grammar. *)

open Helpers
module S = Lognic_sim
module N = Lognic_numerics
module T = S.Tenant

(* ---- spec / set validation ------------------------------------------- *)

let spec_validation () =
  check_raises_invalid "empty name" (fun () -> T.spec "");
  check_raises_invalid "weight 0" (fun () -> T.spec ~weight:0 "a");
  check_raises_invalid "share 0" (fun () -> T.spec ~share:0. "a");
  check_raises_invalid "share nan" (fun () -> T.spec ~share:Float.nan "a");
  check_raises_invalid "slo 0" (fun () -> T.spec ~slo_p99:0. "a");
  check_raises_invalid "class weight 0" (fun () ->
      T.spec ~class_weights:[| 1; 0 |] "a");
  check_raises_invalid "empty set" (fun () -> T.set []);
  check_raises_invalid "duplicate name" (fun () ->
      T.set [ T.spec "a"; T.spec "a" ]);
  check_raises_invalid "uniform 0" (fun () -> T.uniform 0)

let set_canonicalizes () =
  let spec_names s = Array.map (fun (x : T.spec) -> x.T.name) (T.specs s) in
  let a = T.set [ T.spec "zeta"; T.spec "alpha"; T.spec "mid" ] in
  let b = T.set [ T.spec "mid"; T.spec "zeta"; T.spec "alpha" ] in
  Alcotest.(check (array string))
    "name-sorted" [| "alpha"; "mid"; "zeta" |] (spec_names a);
  Alcotest.(check (array string)) "order-independent" (spec_names a)
    (spec_names b);
  let s = T.set [ T.spec ~share:3. "a"; T.spec ~share:1. "b" ] in
  let shares = T.shares s in
  check_close "share normalized" 0.75 shares.(0);
  check_close "shares sum to 1" 1. (Array.fold_left ( +. ) 0. shares);
  Alcotest.(check int) "uniform count" 2000 (T.count (T.uniform 2000))

let class_weight_rows () =
  let s = T.set [ T.spec ~class_weights:[| 3; 2 |] "a"; T.spec "b" ] in
  let rows = T.class_weight_rows s ~classes:3 in
  Alcotest.(check (array int)) "declared row padded" [| 3; 2; 1 |] rows.(0);
  Alcotest.(check (array int)) "default row all ones" [| 1; 1; 1 |] rows.(1);
  check_raises_invalid "classes 0" (fun () -> T.class_weight_rows s ~classes:0)

(* ---- tenant draw ----------------------------------------------------- *)

let index_of_edges () =
  let s = T.set [ T.spec ~share:1. "a"; T.spec ~share:3. "b" ] in
  Alcotest.(check int) "u=0 first tenant" 0 (T.index_of s 0.);
  Alcotest.(check int) "u just under edge" 0 (T.index_of s 0.2499);
  Alcotest.(check int) "u over edge" 1 (T.index_of s 0.2501);
  Alcotest.(check int) "u near 1" 1 (T.index_of s 0.999999)

(* The alias table must realize the same marginal distribution as the
   cumulative-edge search: sample both from fixed seeds and compare
   each tenant's frequency to its configured share. *)
let alias_draw_matches_shares () =
  let s =
    T.set
      [
        T.spec ~share:4. "a";
        T.spec ~share:2. "b";
        T.spec ~share:1. "c";
        T.spec ~share:1. "d";
      ]
  in
  let rng = N.Rng.create ~seed:11 in
  let n = 200_000 in
  let counts = Array.make 4 0 in
  for _ = 1 to n do
    let i = T.index_of_bits s (N.Rng.bits rng) in
    counts.(i) <- counts.(i) + 1
  done;
  let shares = T.shares s in
  Array.iteri
    (fun i c ->
      check_within ~pct:3. "alias frequency matches share" shares.(i)
        (float_of_int c /. float_of_int n))
    counts

(* ---- hierarchical arbiter -------------------------------------------- *)

let hier_node ?(engines = 1) ?(group_weights = [| 3; 1 |]) ?class_weights e =
  let groups = Array.length group_weights in
  let class_weights =
    match class_weights with
    | Some cw -> cw
    | None -> Array.make groups [| 1 |]
  in
  S.Ip_node.create_hierarchical e
    ~rng:(N.Rng.create ~seed:3)
    ~label:"hier" ~engines ~rate_per_engine:1. ~entries_per_queue:100
    ~group_weights ~class_weights ~service_dist:S.Ip_node.Deterministic

(* Count how many of [served] fall in each consecutive window of
   [width] grants, reporting group-0 counts per full window. *)
let window_counts width served =
  let arr = Array.of_list served in
  List.init
    (Array.length arr / width)
    (fun w ->
      let c = ref 0 in
      for i = w * width to ((w + 1) * width) - 1 do
        if arr.(i) = 0 then incr c
      done;
      !c)

let hier_group_wrr_order () =
  let e = S.Engine.create () in
  let node = hier_node e in
  let order = ref [] in
  (* first submit grants immediately (idle node, single-class groups);
     the rest queue behind the busy engine and drain by group credit:
     every full round of 4 queued grants carries 3 from the weight-3
     group and 1 from the weight-1 group, whichever group the round
     happens to start with *)
  for _ = 1 to 10 do
    ignore (S.Ip_node.submit ~queue:0 node ~work:1. (fun () -> order := 0 :: !order))
  done;
  for _ = 1 to 4 do
    ignore (S.Ip_node.submit ~queue:1 node ~work:1. (fun () -> order := 1 :: !order))
  done;
  S.Engine.run e;
  let served = List.rev !order in
  Alcotest.(check int) "all served" 14 (List.length served);
  (* 9 queued in the heavy group, 4 in the light one: three full
     credit rounds before either drains *)
  let queued = List.filteri (fun i _ -> i > 0 && i <= 12) served in
  Alcotest.(check (list int))
    "3 heavy grants per round of 4" [ 3; 3; 3 ] (window_counts 4 queued)

let hier_work_conserving () =
  let e = S.Engine.create () in
  let node = hier_node ~group_weights:[| 9; 1 |] e in
  let served = ref 0 in
  (* only the light group has work: its queue must still drain at full
     rate, and a group never blocks an idle round *)
  for _ = 1 to 5 do
    ignore (S.Ip_node.submit ~queue:1 node ~work:1. (fun () -> incr served))
  done;
  S.Engine.run e;
  Alcotest.(check int) "light group served alone" 5 !served

let hier_class_wrr_within_group () =
  let e = S.Engine.create () in
  let node =
    hier_node ~group_weights:[| 1 |] ~class_weights:[| [| 2; 1 |] |] e
  in
  let order = ref [] in
  (* one group, two class queues weighted 2:1 — multi-class groups keep
     the full enqueue/grant path even when idle (the stage-2 cursor is
     observable), so every grant follows the expanded class pattern:
     each full window of 3 carries 2 class-0 grants and 1 class-1 *)
  for _ = 1 to 8 do
    ignore (S.Ip_node.submit ~queue:0 node ~work:1. (fun () -> order := 0 :: !order))
  done;
  for _ = 1 to 4 do
    ignore (S.Ip_node.submit ~queue:1 node ~work:1. (fun () -> order := 1 :: !order))
  done;
  S.Engine.run e;
  let served = List.rev !order in
  Alcotest.(check int) "all served" 12 (List.length served);
  let first_nine = List.filteri (fun i _ -> i < 9) served in
  Alcotest.(check (list int))
    "2 heavy grants per window of 3" [ 2; 2; 2 ] (window_counts 3 first_nine)

let hier_reactivation_fresh_credit () =
  let e = S.Engine.create () in
  let node = hier_node ~group_weights:[| 2; 2 |] e in
  let order = ref [] in
  let sub q = ignore (S.Ip_node.submit ~queue:q node ~work:1. (fun () -> order := q :: !order)) in
  (* drain group 0 completely, then backlog both groups: group 0 must
     rejoin the ring with a fresh credit grant, not a stale one — every
     full round of 4 queued grants after reactivation still splits
     2:2 *)
  sub 0;
  sub 0;
  S.Engine.run e;
  for _ = 1 to 5 do
    sub 0;
    sub 1
  done;
  S.Engine.run e;
  let served = List.rev !order in
  Alcotest.(check int) "all served" 12 (List.length served);
  (* phase 2: first submit fast-grants, leaving 4 queued per group *)
  let queued = List.filteri (fun i _ -> i > 3 && i <= 11) served in
  Alcotest.(check (list int))
    "fresh 2:2 rounds after reactivation" [ 2; 2 ] (window_counts 4 queued)

(* ---- attribution closes against the aggregate ------------------------ *)

let attribution_sums_to_aggregate () =
  let module D = Lognic_devices in
  let graph =
    D.Liquidio.inline_accel_graph ~spec:D.Accel_spec.md5
      ~packet_size:Lognic.Units.mtu ()
  in
  let traffic =
    Lognic.Traffic.make
      ~rate:(2. *. D.Liquidio.line_rate)
      ~packet_size:Lognic.Units.mtu
  in
  let tenants =
    T.set
      (T.spec ~weight:4 ~share:2. "gold" :: T.spec ~weight:2 "silver"
      :: List.init 6 (fun i -> T.spec (Printf.sprintf "vf%d" i)))
  in
  let config =
    S.Netsim.Config.(
      default |> with_horizon ~warmup:2e-4 2e-3 |> with_seed 17
      |> with_tenants tenants)
  in
  let m = S.Netsim.run_single ~config graph ~hw:D.Liquidio.hardware ~traffic in
  match m.S.Netsim.tenants with
  | None -> Alcotest.fail "tenanted run reported no tenant stats"
  | Some stats ->
    let sum f = Array.fold_left (fun acc r -> acc + f r) 0 stats.T.rows in
    let sumf f = Array.fold_left (fun acc r -> acc +. f r) 0. stats.T.rows in
    let s = m.S.Netsim.summary in
    (* overload: both drops and deliveries are present, so the closure
       is exercised on every account *)
    Alcotest.(check bool) "has drops" true (s.S.Telemetry.dropped_packets > 0);
    Alcotest.(check bool)
      "has deliveries" true
      (s.S.Telemetry.delivered_packets > 0);
    Alcotest.(check int) "offered closes" s.S.Telemetry.offered_packets
      (sum (fun r -> r.T.r_offered));
    Alcotest.(check int) "delivered closes" s.S.Telemetry.delivered_packets
      (sum (fun r -> r.T.r_delivered));
    Alcotest.(check int) "dropped closes" s.S.Telemetry.dropped_packets
      (sum (fun r -> r.T.r_dropped));
    check_close "delivered bytes close" s.S.Telemetry.delivered_bytes
      (sumf (fun r -> r.T.r_delivered_bytes));
    check_close "throughput closes" s.S.Telemetry.throughput
      (sumf (fun r -> r.T.r_throughput))

(* ---- colon-spec grammar ---------------------------------------------- *)

let tenant_grammar =
  S.Spec.grammar ~flag:"tenant"
    [
      S.Spec.field "NAME" S.Spec.Str;
      S.Spec.field "WEIGHT" S.Spec.Int;
      S.Spec.field ~optional:true "SHARE" S.Spec.Float;
      S.Spec.field ~optional:true "SLO" S.Spec.Float;
    ]

let spec_grammar_parses () =
  Alcotest.(check string)
    "usage string" "NAME:WEIGHT[:SHARE[:SLO]]"
    (S.Spec.usage tenant_grammar);
  (match S.Spec.parse tenant_grammar "gold:4" with
  | Ok v ->
    Alcotest.(check string) "name" "gold" (S.Spec.get_str v 0);
    Alcotest.(check int) "weight" 4 (S.Spec.get_int v 1);
    Alcotest.(check bool) "share omitted" true (S.Spec.find_float v 2 = None)
  | Error e -> Alcotest.failf "gold:4 rejected: %s" e);
  match S.Spec.parse tenant_grammar "gold:4:2.5:0.001" with
  | Ok v ->
    check_close "share" 2.5 (S.Spec.get_float v 2);
    check_close "slo" 0.001 (S.Spec.get_float v 3)
  | Error e -> Alcotest.failf "full spec rejected: %s" e

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let spec_grammar_errors () =
  let expect_error src fragment =
    match S.Spec.parse tenant_grammar src with
    | Ok _ -> Alcotest.failf "%S unexpectedly parsed" src
    | Error e ->
      if not (contains_sub e fragment) then
        Alcotest.failf "%S error %S lacks %S" src e fragment
  in
  expect_error "gold" "at least 2";
  expect_error "gold:x" "WEIGHT";
  expect_error "gold:4:a" "SHARE";
  expect_error "a:1:2:3:4:5" "at most";
  expect_error ":4" "NAME"

let suite =
  [
    quick "tenant: spec validation" spec_validation;
    quick "tenant: set canonicalizes" set_canonicalizes;
    quick "tenant: class weight rows" class_weight_rows;
    quick "tenant: index_of edges" index_of_edges;
    quick "tenant: alias draw matches shares" alias_draw_matches_shares;
    quick "hier: group WRR order" hier_group_wrr_order;
    quick "hier: work conserving" hier_work_conserving;
    quick "hier: class WRR within group" hier_class_wrr_within_group;
    quick "hier: reactivation fresh credit" hier_reactivation_fresh_credit;
    quick "tenant: attribution sums to aggregate" attribution_sums_to_aggregate;
    quick "spec: tenant grammar parses" spec_grammar_parses;
    quick "spec: tenant grammar errors" spec_grammar_errors;
  ]
