(* Integration tests over the five case studies: each asserts the
   paper-level claims our reproduction targets (see EXPERIMENTS.md). *)

open Helpers
module U = Lognic.Units
module A = Lognic_devices.Accel_spec
open Lognic_apps

(* Case study #1 *)

let case1_fig9_knees () =
  (* §4.2: MD5/KASUMI/HFA need 9/8/11 cores to max out. *)
  Alcotest.(check int) "MD5 knee" 9 (Inline_accel.required_cores ~spec:A.md5);
  Alcotest.(check int) "KASUMI knee" 8 (Inline_accel.required_cores ~spec:A.kasumi);
  Alcotest.(check int) "HFA knee" 11 (Inline_accel.required_cores ~spec:A.hfa)

let case1_fig9_model_accuracy () =
  (* §4.2: model-vs-measured difference well under a few percent. *)
  List.iter
    (fun spec ->
      let points = Inline_accel.fig9_parallelism_sweep ~duration:0.03 ~spec () in
      List.iter
        (fun (p : Inline_accel.point) ->
          check_within ~pct:5.
            (Printf.sprintf "%s at %g cores" spec.A.name p.x)
            p.model p.measured)
        points)
    [ A.md5; A.kasumi ]

let case1_fig9_shape () =
  (* linear rise then plateau at the accelerator's peak *)
  let points = Inline_accel.fig9_parallelism_sweep ~duration:0.02 ~spec:A.md5 () in
  let model = List.map (fun (p : Inline_accel.point) -> p.model) points in
  let sorted = List.sort compare model in
  Alcotest.(check (list (float 1e-6))) "monotone" sorted model;
  check_close "plateau at peak ops" A.md5.peak_ops (List.nth model 15)

let case1_fig5_granularity () =
  let points = Inline_accel.fig5_granularity_sweep ~duration:0.02 ~spec:A.crc () in
  let at g =
    (List.find (fun (p : Inline_accel.point) -> p.x = g) points).model
  in
  check_close "flat at small granularity" (at 512.) (at 1024.);
  Alcotest.(check bool) "dropping past the knee" true (at 8192. < at 2048.);
  (* §4.2: 16KB granularity leaves CRC at 13.6% of peak *)
  check_within ~pct:3. "CRC 16KB = 13.6% of peak" 0.136 (at 16384. /. at 512.)

let case1_fig10_law () =
  (* achieved bandwidth = min(P_IP2 x size, line rate) at full cores *)
  let points = Inline_accel.fig10_packet_size_sweep ~duration:0.02 ~spec:A.crc () in
  List.iter
    (fun (p : Inline_accel.point) ->
      let expected = Float.min (A.crc.peak_ops *. p.x) Lognic_devices.Liquidio.line_rate in
      check_within ~pct:2. (Printf.sprintf "size %g" p.x) expected p.model)
    points

(* Case study #2 *)

let case2_fig6_accuracy () =
  (* §4.3: latency estimation error ~1%. Our tolerance: < 3% per profile. *)
  List.iter
    (fun (name, io) ->
      let points = Nvme_of.fig6_profile_sweep ~duration:0.25 ~points:6 ~io () in
      let error = Nvme_of.fig6_error_rate points in
      if error >= 0.03 then
        Alcotest.failf "%s error %.2f%% exceeds 3%%" name (100. *. error))
    [
      ("4KB-RRD", Lognic_devices.Ssd.rrd_4k);
      ("128KB-RRD", Lognic_devices.Ssd.rrd_128k);
      ("4KB-SWR", Lognic_devices.Ssd.swr_4k);
    ]

let case2_fig6_latency_rises () =
  let points =
    Nvme_of.fig6_profile_sweep ~duration:0.2 ~points:6
      ~io:Lognic_devices.Ssd.rrd_4k ()
  in
  let first = List.hd points and last = List.nth points 5 in
  Alcotest.(check bool)
    "latency rises toward saturation" true
    (last.Nvme_of.model_latency > first.Nvme_of.model_latency)

let case2_fig7_gc_gap () =
  (* §4.3: the model under-predicts mixed R/W bandwidth (~14.6%); the
     gap must peak mid-range and vanish at the pure endpoints. *)
  let points = Nvme_of.fig7_read_ratio_sweep ~duration:0.25 () in
  let gap (p : Nvme_of.mixed_point) =
    (p.measured_bandwidth -. p.model_bandwidth) /. p.measured_bandwidth
  in
  let find r = List.find (fun (p : Nvme_of.mixed_point) -> p.read_ratio = r) points in
  Alcotest.(check bool) "pure writes agree" true (abs_float (gap (find 0.)) < 0.05);
  Alcotest.(check bool) "pure reads agree" true (abs_float (gap (find 1.)) < 0.05);
  let mid = gap (find 0.5) in
  Alcotest.(check bool)
    "mid-ratio underestimate in the 8-25% band" true
    (mid > 0.08 && mid < 0.25)

let case2_calibration () =
  let fit = Nvme_of.calibration_demo ~io:Lognic_devices.Ssd.rrd_4k () in
  let eff =
    Lognic_devices.Ssd.effective Lognic_devices.Ssd.default
      ~io:Lognic_devices.Ssd.rrd_4k ~gc:Lognic_devices.Ssd.Gc_realistic
  in
  (* the fitted capacity should land near the drive's actual capacity *)
  check_within ~pct:15. "fitted capacity" eff.Lognic_devices.Ssd.capacity
    fit.Lognic.Calibrate.capacity

(* Case study #3 *)

let case3_opt_dominates () =
  List.iter
    (fun workload ->
      match Microservices.compare_schemes workload with
      | [ rr; eq; opt ] ->
        Alcotest.(check bool)
          (workload.Microservices.name ^ ": opt throughput dominates")
          true
          (opt.throughput >= rr.throughput -. 1e-6
          && opt.throughput >= eq.throughput -. 1e-6);
        Alcotest.(check bool)
          (workload.Microservices.name ^ ": opt latency dominates")
          true
          (opt.latency <= rr.latency +. 1e-12 && opt.latency <= eq.latency +. 1e-12)
      | _ -> Alcotest.fail "three schemes")
    Microservices.all

let case3_gains_match_paper () =
  (* §4.4: ~34.8% / 36.4% throughput gains. Ours must land within a
     third of those (shape, not absolute). *)
  let gains =
    List.map
      (fun w ->
        match Microservices.compare_schemes w with
        | [ rr; eq; opt ] ->
          ( (opt.throughput /. rr.throughput) -. 1.,
            (opt.throughput /. eq.throughput) -. 1. )
        | _ -> assert false)
      Microservices.all
  in
  let avg f = List.fold_left (fun a g -> a +. f g) 0. gains /. 5. in
  let vs_rr = avg fst and vs_eq = avg snd in
  Alcotest.(check bool)
    "gain vs round-robin in [23%, 47%]" true
    (vs_rr > 0.23 && vs_rr < 0.47);
  Alcotest.(check bool)
    "gain vs equal partition in [24%, 49%]" true
    (vs_eq > 0.24 && vs_eq < 0.49)

let case3_allocations_sane () =
  List.iter
    (fun w ->
      let alloc = Microservices.allocation Microservices.Lognic_opt w in
      Alcotest.(check int)
        (w.Microservices.name ^ ": uses all cores")
        16
        (List.fold_left ( + ) 0 alloc);
      Alcotest.(check bool)
        (w.Microservices.name ^ ": every stage staffed")
        true
        (List.for_all (fun c -> c >= 1) alloc);
      (* cores roughly proportional to stage cost: the costliest stage
         gets the most cores *)
      let costs = List.map snd w.Microservices.stages in
      let max_cost = List.fold_left Float.max 0. costs in
      let max_alloc = List.fold_left max 0 alloc in
      let costliest_index =
        fst (List.fold_left
               (fun (best, i) c -> if c = max_cost then (i, i + 1) else (best, i + 1))
               (0, 0) costs)
      in
      Alcotest.(check int)
        (w.Microservices.name ^ ": costliest stage gets most cores")
        max_alloc
        (List.nth alloc costliest_index))
    Microservices.all

let case3_hybrid_migration () =
  (* Â§4.4's host-migration path: the hybrid never loses to NIC-only
     (split_at = #stages IS NIC-only and is in the search space), and
     for these overloaded chains moving a suffix to the host wins. *)
  List.iter
    (fun w ->
      let k = List.length w.Microservices.stages in
      let split = Microservices.best_hybrid_split w in
      Alcotest.(check bool)
        (w.Microservices.name ^ ": split in range")
        true
        (split >= 0 && split <= k);
      let gain = Microservices.hybrid_gain w in
      Alcotest.(check bool)
        (w.Microservices.name ^ ": migration never hurts")
        true (gain >= 1. -. 1e-9);
      Alcotest.(check bool)
        (w.Microservices.name ^ ": migration helps this chain")
        true (gain > 1.1);
      (* graph validity across all split points *)
      for s = 0 to k do
        Alcotest.(check bool)
          (Printf.sprintf "%s: valid at split %d" w.Microservices.name s)
          true
          (Result.is_ok
             (Lognic.Graph.validate (Microservices.hybrid_graph w ~split_at:s)))
      done)
    Microservices.all;
  check_raises_invalid "split out of range" (fun () ->
      Microservices.hybrid_graph Microservices.nfv_fin ~split_at:9)

let case3_hybrid_pays_pcie_latency () =
  (* structural: the crossing vertex carries the PCIe driver latency as
     O and the crossing edge is the PCIe link. (In end-to-end latency
     the faster host cores largely offset that tax, which is exactly
     why the capacity-driven migration is worthwhile.) *)
  let w = Microservices.nfv_fin in
  let g = Microservices.hybrid_graph w ~split_at:2 in
  let crossing =
    List.find
      (fun (v : Lognic.Graph.vertex) ->
        v.service.overhead >= Lognic_devices.Host.pcie_latency)
      (Lognic.Graph.vertices g)
  in
  let pcie_edge =
    List.find
      (fun (e : Lognic.Graph.edge) ->
        e.bandwidth = Some Lognic_devices.Host.pcie_bandwidth)
      (Lognic.Graph.edges g)
  in
  Alcotest.(check bool)
    "crossing leaves the NIC prefix" true
    (String.length crossing.label > 4 && String.sub crossing.label 0 4 = "nic.");
  Alcotest.(check bool)
    "PCIe edge enters the host suffix" true
    (String.sub (Lognic.Graph.vertex g pcie_edge.dst).label 0 5 = "host.")

let case3_energy_efficiency () =
  (* E3's premise: wimpy NIC cores beat host cores on requests/joule
     even where raw capacity says otherwise. *)
  List.iter
    (fun w ->
      match Microservices.energy_comparison w with
      | [ nic; host; hybrid ] ->
        Alcotest.(check string) "order" "nic" nic.Microservices.placement;
        Alcotest.(check bool)
          (w.Microservices.name ^ ": NIC >= 3x host efficiency")
          true
          (nic.Microservices.rps_per_watt
          > 3. *. host.Microservices.rps_per_watt);
        Alcotest.(check bool)
          (w.Microservices.name ^ ": hybrid capacity highest")
          true
          (hybrid.Microservices.capacity_rps
          >= Float.max nic.Microservices.capacity_rps
               host.Microservices.capacity_rps
             -. 1e-6);
        Alcotest.(check bool)
          (w.Microservices.name ^ ": hybrid efficiency between host and NIC")
          true
          (hybrid.Microservices.rps_per_watt > host.Microservices.rps_per_watt
          && hybrid.Microservices.rps_per_watt < nic.Microservices.rps_per_watt)
      | _ -> Alcotest.fail "three placements")
    Microservices.all

(* Case study #4 *)

let case4_opt_dominates_throughput () =
  List.iter
    (fun (o : Nf_chain.outcome) ->
      let opt = Nf_chain.evaluate ~packet_size:o.packet_size Nf_chain.Lognic_opt in
      Alcotest.(check bool)
        (Printf.sprintf "opt >= %s at %gB" (Nf_chain.scheme_name o.scheme) o.packet_size)
        true
        (opt.throughput >= o.throughput -. 1e-6))
    (Nf_chain.sweep ())

let case4_regime_flip () =
  (* ARM wins at 64B, accelerators win at MTU. *)
  let at size scheme = (Nf_chain.evaluate ~packet_size:size scheme).Nf_chain.throughput in
  Alcotest.(check bool)
    "ARM-only >= accel-only at 64B" true
    (at 64. Nf_chain.Arm_only >= at 64. Nf_chain.Accel_only);
  Alcotest.(check bool)
    "accel-only > ARM-only at MTU" true
    (at U.mtu Nf_chain.Accel_only > at U.mtu Nf_chain.Arm_only)

let case4_placement_flips_with_size () =
  let p64 = Nf_chain.describe_placement ~packet_size:64. in
  let p1500 = Nf_chain.describe_placement ~packet_size:U.mtu in
  Alcotest.(check bool) "placements differ across sizes" true (p64 <> p1500);
  (* DPI can never be accelerated *)
  Alcotest.(check bool) "DPI on arm" true (contains_substring p64 "DPI:arm");
  Alcotest.(check bool) "DPI on arm" true (contains_substring p1500 "DPI:arm")

let case4_gains () =
  (* §4.5: +81.9% over ARM-only, +21.7% over accel-only on average.
     Require the same ordering with at least half the magnitude. *)
  let outs = Nf_chain.sweep () in
  let by s = List.filter (fun (o : Nf_chain.outcome) -> o.scheme = s) outs in
  let avg_gain base =
    let pairs = List.combine (by Nf_chain.Lognic_opt) (by base) in
    List.fold_left
      (fun acc ((o : Nf_chain.outcome), (b : Nf_chain.outcome)) ->
        acc +. ((o.throughput /. b.throughput) -. 1.))
      0. pairs
    /. float_of_int (List.length pairs)
  in
  Alcotest.(check bool) "vs ARM-only > 40%" true (avg_gain Nf_chain.Arm_only > 0.4);
  Alcotest.(check bool) "vs accel-only > 10%" true (avg_gain Nf_chain.Accel_only > 0.1)

(* Case study #5 *)

let case5_credit_suggestions () =
  (* §4.6 scenario 1: suggested credits 5/4/4/4. *)
  let suggestions =
    List.map (fun p -> Panic_scenarios.suggest_credits ~profile:p ()) Panic_scenarios.profiles
  in
  Alcotest.(check (list int)) "5/4/4/4" [ 5; 4; 4; 4 ] suggestions

let case5_credit_latency_drop () =
  (* §4.6: 21.8% latency drop for profile 1; ours must be a clear
     monotone improvement, largest for profile 1. *)
  let drops =
    List.map
      (fun p -> Panic_scenarios.latency_drop_vs_default ~profile:p ())
      Panic_scenarios.profiles
  in
  List.iter (fun d -> Alcotest.(check bool) "positive drop" true (d > 0.02)) drops;
  let p1 = List.hd drops in
  Alcotest.(check bool)
    "profile 1 sees the largest drop" true
    (List.for_all (fun d -> p1 >= d -. 1e-9) drops)

let case5_credit_bandwidth_monotone () =
  let points = Panic_scenarios.fig15_credit_sweep ~duration:0.02 ~profile:(List.hd Panic_scenarios.profiles) () in
  let model = List.map (fun (p : Panic_scenarios.credit_point) -> p.model_bandwidth) points in
  let sorted = List.sort compare model in
  Alcotest.(check (list (float 1e-3))) "goodput monotone in credits" sorted model

let case5_steering_optimal () =
  (* §4.6 scenario 2: the LogNIC split beats all four static ones, and
     the suggested X is near the capacity-proportional 56. *)
  List.iter
    (fun size ->
      let points = Panic_scenarios.fig16_17_steering ~packet_size:size () in
      let statics, lognic =
        match List.rev points with
        | l :: rest -> (rest, l)
        | [] -> assert false
      in
      List.iter
        (fun (s : Panic_scenarios.steering_point) ->
          Alcotest.(check bool)
            (Printf.sprintf "latency at %gB vs %s" size s.split_label)
            true
            (lognic.Panic_scenarios.latency <= s.latency +. 1e-12);
          Alcotest.(check bool)
            (Printf.sprintf "throughput at %gB vs %s" size s.split_label)
            true
            (lognic.Panic_scenarios.throughput >= s.throughput -. 1e-6))
        statics;
      check_within ~pct:8. "X near proportional" 56. lognic.x_percent)
    [ 64.; 512.; U.mtu ]

let case5_parallelism_suggestions () =
  (* §4.6 scenario 3: degrees 6 and 4. *)
  Alcotest.(check int) "50/50 -> 6" 6
    (Panic_scenarios.suggest_parallelism ~split:(50., 50.) ());
  Alcotest.(check int) "80/20 -> 4" 4
    (Panic_scenarios.suggest_parallelism ~split:(80., 20.) ())

let case5_parallelism_curves () =
  List.iter
    (fun split ->
      let points = Panic_scenarios.fig18_19_parallelism ~split () in
      let tps = List.map (fun (p : Panic_scenarios.parallelism_point) -> p.p_throughput) points in
      let lats = List.map (fun (p : Panic_scenarios.parallelism_point) -> p.p_latency) points in
      Alcotest.(check (list (float 1e-3))) "throughput rises" (List.sort compare tps) tps;
      Alcotest.(check (list (float 1e-12)))
        "latency falls"
        (List.rev (List.sort compare lats))
        lats)
    [ (50., 50.); (80., 20.) ]

(* Figures registry *)

let figures_registry () =
  Alcotest.(check int) "22 renderables" 22 (List.length Figures.names);
  Alcotest.(check bool)
    "unknown figure" true
    (Result.is_error (Figures.render "fig99" Fmt.stdout));
  (* cheap figures render without raising *)
  let buffer = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buffer in
  List.iter
    (fun name ->
      match Figures.render name ppf with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    [ "table2"; "fig16"; "fig17"; "fig18"; "fig19" ];
  Format.pp_print_flush ppf ();
  Alcotest.(check bool) "produced output" true (Buffer.length buffer > 500)

let suite =
  [
    quick "case1: Fig 9 knees (9/8/11 cores)" case1_fig9_knees;
    slow "case1: Fig 9 model accuracy" case1_fig9_model_accuracy;
    quick "case1: Fig 9 shape" case1_fig9_shape;
    quick "case1: Fig 5 granularity" case1_fig5_granularity;
    quick "case1: Fig 10 min law" case1_fig10_law;
    slow "case2: Fig 6 accuracy" case2_fig6_accuracy;
    slow "case2: Fig 6 latency curve" case2_fig6_latency_rises;
    slow "case2: Fig 7 GC gap" case2_fig7_gc_gap;
    slow "case2: calibration round trip" case2_calibration;
    quick "case3: opt dominates" case3_opt_dominates;
    quick "case3: gains match the paper" case3_gains_match_paper;
    quick "case3: allocations sane" case3_allocations_sane;
    quick "case3: hybrid NIC/host migration" case3_hybrid_migration;
    quick "case3: hybrid pays the PCIe tax" case3_hybrid_pays_pcie_latency;
    quick "case3: energy efficiency" case3_energy_efficiency;
    quick "case4: opt dominates throughput" case4_opt_dominates_throughput;
    quick "case4: regime flip with size" case4_regime_flip;
    quick "case4: placement flips" case4_placement_flips_with_size;
    quick "case4: gains" case4_gains;
    quick "case5: credits 5/4/4/4" case5_credit_suggestions;
    quick "case5: credit latency drop" case5_credit_latency_drop;
    quick "case5: credit bandwidth monotone" case5_credit_bandwidth_monotone;
    quick "case5: steering optimal" case5_steering_optimal;
    quick "case5: parallelism 6/4" case5_parallelism_suggestions;
    quick "case5: parallelism curves" case5_parallelism_curves;
    quick "figures: registry" figures_registry;
  ]
