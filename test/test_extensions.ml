(* Tests for the §3.7 model extensions and the optimizer/calibration. *)

open Helpers
module G = Lognic.Graph
module U = Lognic.Units
module T = Lognic.Traffic
module E = Lognic.Extensions
module O = Lognic.Optimizer

let svc ?parallelism ?queue_capacity ?overhead throughput =
  G.service ?parallelism ?queue_capacity ?overhead ~throughput ()

let hw = Lognic.Params.hardware ~bw_interface:(10. *. U.gbps) ~bw_memory:(20. *. U.gbps)

let chain ?(alpha = 1.) ip_rate =
  let g = G.empty in
  let g, i = G.add_vertex ~kind:G.Ingress ~label:"in" ~service:(svc (40. *. U.gbps)) g in
  let g, w = G.add_vertex ~kind:G.Ip ~label:"ip" ~service:(svc ip_rate) g in
  let g, e = G.add_vertex ~kind:G.Egress ~label:"out" ~service:(svc (40. *. U.gbps)) g in
  let g = G.add_edge ~delta:1. ~alpha ~src:i ~dst:w g in
  let g = G.add_edge ~delta:1. ~src:w ~dst:e g in
  (g, w)

(* Extension #1: consolidation *)

let consolidate_single_equals_direct () =
  let g, _ = chain (5. *. U.gbps) in
  let traffic = T.make ~rate:(2. *. U.gbps) ~packet_size:1500. in
  let direct = Lognic.Estimate.run g ~hw ~traffic in
  let consolidated =
    E.consolidate ~hw [ { E.name = "solo"; graph = g; traffic } ]
  in
  check_close "one tenant = direct evaluation"
    direct.throughput.Lognic.Throughput.attained consolidated.total_attained;
  check_close "latency unchanged" direct.latency.Lognic.Latency.mean
    consolidated.mean_latency

let consolidate_contention_degrades () =
  (* Two tenants each demanding 6G of a 10G interface: each one's
     effective ceiling drops below its solo value. *)
  let g1, _ = chain (20. *. U.gbps) in
  let g2, _ = chain (20. *. U.gbps) in
  let traffic = T.make ~rate:(6. *. U.gbps) ~packet_size:1500. in
  let solo = E.consolidate ~hw [ { E.name = "a"; graph = g1; traffic } ] in
  let both =
    E.consolidate ~hw
      [
        { E.name = "a"; graph = g1; traffic };
        { E.name = "b"; graph = g2; traffic };
      ]
  in
  Alcotest.(check bool)
    "oversubscription flagged" true
    (both.interface_utilization > 1.);
  let solo_a = (List.hd solo.tenants).throughput.Lognic.Throughput.attained in
  let shared_a = (List.hd both.tenants).throughput.Lognic.Throughput.attained in
  Alcotest.(check bool) "tenant a degraded" true (shared_a < solo_a);
  check_raises_invalid "empty tenant list" (fun () -> E.consolidate ~hw [])

let consolidate_disjoint_resources_compose () =
  (* Tenants that do not touch shared media do not interfere. *)
  let g1, _ = chain ~alpha:0. (3. *. U.gbps) in
  let g2, _ = chain ~alpha:0. (3. *. U.gbps) in
  let traffic = T.make ~rate:(2. *. U.gbps) ~packet_size:1500. in
  let both =
    E.consolidate ~hw
      [
        { E.name = "a"; graph = g1; traffic };
        { E.name = "b"; graph = g2; traffic };
      ]
  in
  check_close "sum of independent tenants" (4. *. U.gbps) both.total_attained

(* Extension #2: mixed traffic *)

let mixed_traffic_weighted_average () =
  (* The legacy independent evaluation: private device copies,
     weight-averaged aggregate. Kept as an explicit ablation. *)
  let g, _ = chain (5. *. U.gbps) in
  let mk rate size = T.make ~rate ~packet_size:size in
  let mix =
    T.mix [ (mk (1. *. U.gbps) 64., 1.); (mk (1. *. U.gbps) 1500., 3.) ]
  in
  let report = E.mixed_traffic_independent ~hw ~graph_for:(fun _ -> g) mix in
  Alcotest.(check int) "two classes" 2 (List.length report.classes);
  (* both classes are under capacity, so throughput is the weighted
     average of the class rates *)
  check_close ~tol:1e-9 "weighted attained" (1. *. U.gbps) report.throughput;
  Alcotest.(check bool) "no contention data" true (report.contention = None);
  (* latency must lie between the two per-class latencies *)
  let latencies =
    List.map (fun (_, _, _, (l : Lognic.Latency.result)) -> l.mean) report.classes
  in
  let lo = List.fold_left Float.min infinity latencies in
  let hi = List.fold_left Float.max 0. latencies in
  Alcotest.(check bool) "latency bracketed" true
    (report.latency >= lo -. 1e-12 && report.latency <= hi +. 1e-12)

let mixed_traffic_size_dependent_graphs () =
  (* Extension #2 allows a different graph per size class. Under the
     legacy independent evaluation the aggregate is the weight-averaged
     per-class attained rate. *)
  let graph_for (cls : T.t) =
    let rate = if cls.packet_size < 500. then 1. *. U.gbps else 8. *. U.gbps in
    fst (chain rate)
  in
  let mix =
    T.mix
      [
        (T.make ~rate:(2. *. U.gbps) ~packet_size:64., 1.);
        (T.make ~rate:(2. *. U.gbps) ~packet_size:1500., 1.);
      ]
  in
  let report = E.mixed_traffic_independent ~hw ~graph_for mix in
  (* small class clipped at 1G, large class carried at 2G: mean 1.5G *)
  check_close ~tol:1e-9 "per-class graphs respected" (1.5 *. U.gbps)
    report.throughput

let mixed_traffic_single_class_limit () =
  (* A one-class mix through the joint evaluation must be bit-for-bit
     the plain single-class model. *)
  let g, _ = chain (5. *. U.gbps) in
  let traffic = T.make ~rate:(4. *. U.gbps) ~packet_size:1500. in
  let direct = Lognic.Estimate.run g ~hw ~traffic in
  let report = E.mixed_traffic ~hw ~graph_for:(fun _ -> g) (T.mix [ (traffic, 1.) ]) in
  let bits = Int64.bits_of_float in
  (match report.classes with
  | [ (_, _, tp, lat) ] ->
    Alcotest.(check int64) "capacity bits"
      (bits direct.throughput.Lognic.Throughput.capacity)
      (bits tp.Lognic.Throughput.capacity);
    Alcotest.(check int64) "attained bits"
      (bits direct.throughput.Lognic.Throughput.attained)
      (bits tp.Lognic.Throughput.attained);
    Alcotest.(check int64) "mean latency bits"
      (bits direct.latency.Lognic.Latency.mean)
      (bits lat.Lognic.Latency.mean);
    Alcotest.(check int64) "carried rate bits"
      (bits direct.latency.Lognic.Latency.carried_rate)
      (bits lat.Lognic.Latency.carried_rate)
  | _ -> Alcotest.fail "expected one class");
  Alcotest.(check int64) "aggregate throughput bits"
    (bits direct.throughput.Lognic.Throughput.attained)
    (bits report.throughput)

let mixed_traffic_joint_shares_capacity () =
  (* Two classes on the same 5G chain: the joint model splits the IP by
     offered-byte share, and the aggregate is the SUM of carried rates.
     Two 4G offers on a 5G vertex must carry 5G total, not the legacy
     4G average. *)
  let g, _ = chain ~alpha:0. (5. *. U.gbps) in
  let mix =
    T.mix
      [
        (T.make ~rate:(4. *. U.gbps) ~packet_size:64., 1.);
        (T.make ~rate:(4. *. U.gbps) ~packet_size:1500., 1.);
      ]
  in
  let report = E.mixed_traffic ~hw ~graph_for:(fun _ -> g) mix in
  check_close ~tol:1e-9 "aggregate = joint capacity" (5. *. U.gbps)
    report.throughput;
  List.iter
    (fun (_, _, (tp : Lognic.Throughput.result), _) ->
      (* equal byte shares: each class gets half of the 5G vertex *)
      check_close ~tol:1e-9 "per-class cap = half" (2.5 *. U.gbps) tp.capacity;
      check_close ~tol:1e-9 "per-class carried" (2.5 *. U.gbps) tp.attained)
    report.classes;
  (* under-committed classes keep their own rate: 1G + 1G on 5G = 2G *)
  let light =
    E.mixed_traffic ~hw
      ~graph_for:(fun _ -> g)
      (T.mix
         [
           (T.make ~rate:(1. *. U.gbps) ~packet_size:64., 1.);
           (T.make ~rate:(1. *. U.gbps) ~packet_size:1500., 1.);
         ])
  in
  check_close ~tol:1e-9 "sum of carried rates" (2. *. U.gbps) light.throughput

let mixed_traffic_joint_latency_exceeds_solo () =
  (* Sharing a queue with a second class must not make the first class
     faster: the joint per-class latency is >= its solo latency. *)
  let g, _ = chain ~alpha:0. (5. *. U.gbps) in
  let a = T.make ~rate:(1. *. U.gbps) ~packet_size:64. in
  let b = T.make ~rate:(1. *. U.gbps) ~packet_size:1500. in
  let solo cls = (Lognic.Estimate.run g ~hw ~traffic:cls).latency.Lognic.Latency.mean in
  let joint = E.mixed_traffic ~hw ~graph_for:(fun _ -> g) (T.mix [ (a, 1.); (b, 1.) ]) in
  List.iter2
    (fun cls (_, _, _, (lat : Lognic.Latency.result)) ->
      Alcotest.(check bool) "joint latency >= solo" true
        (lat.mean >= solo cls -. 1e-15))
    [ a; b ] joint.classes

let mixed_traffic_contention_slowdown () =
  let g, _ = chain ~alpha:0. (5. *. U.gbps) in
  let hw = Lognic.Params.with_resources hw [ ("cache", 8. *. U.gbps) ] in
  let mix =
    T.mix
      [
        (T.make ~rate:(1. *. U.gbps) ~packet_size:64., 1.);
        (T.make ~rate:(1. *. U.gbps) ~packet_size:1500., 1.);
      ]
  in
  let spec =
    E.contention
      ~demands:[ [ ("cache", 1.) ]; [ ("cache", 1.) ] ]
      ~interference:[| [| 0.; 0.5 |]; [| 0.; 0. |] |]
  in
  let plain = E.mixed_traffic ~hw ~graph_for:(fun _ -> g) mix in
  let contended = E.mixed_traffic ~contention:spec ~hw ~graph_for:(fun _ -> g) mix in
  (match contended.contention with
  | Some [ c0; c1 ] ->
    (* class 1 pressures cache at 1G/8G = 0.125; M_01 = 0.5 *)
    check_close ~tol:1e-9 "class 0 slowed" (1. +. (0.5 *. 0.125)) c0.slowdown;
    check_close ~tol:1e-9 "class 1 unaffected" 1. c1.slowdown;
    (* each class's cache ceiling: half the 8G capacity at demand 1 *)
    (match c0.resource_caps with
    | [ ("cache", cap) ] -> check_close ~tol:1e-9 "cache cap" (4. *. U.gbps) cap
    | _ -> Alcotest.fail "expected a cache cap")
  | _ -> Alcotest.fail "expected contention data for two classes");
  (* slowdown shaves class 0's vertex ceiling but not its carried 1G *)
  let cap i r = match List.nth r.E.classes i with _, _, (tp : Lognic.Throughput.result), _ -> tp.capacity in
  Alcotest.(check bool) "class 0 ceiling reduced" true (cap 0 contended < cap 0 plain);
  check_close ~tol:1e-9 "still offered-load bound" (2. *. U.gbps) contended.throughput;
  (* a binding resource produces a Resource_bound bottleneck *)
  let tight =
    E.mixed_traffic
      ~contention:
        (E.contention
           ~demands:[ [ ("cache", 8.) ]; [ ("cache", 8.) ] ]
           ~interference:[| [| 0.; 0. |]; [| 0.; 0. |] |])
      ~hw
      ~graph_for:(fun _ -> g)
      mix
  in
  List.iter
    (fun (_, _, (tp : Lognic.Throughput.result), _) ->
      (* each class: share 0.5 of 8G at 8 demand-bytes/byte = 0.5G cap *)
      check_close ~tol:1e-9 "resource-capped" (0.5 *. U.gbps) tp.capacity;
      Alcotest.(check bool) "resource bottleneck" true
        (tp.bottleneck = Lognic.Throughput.Resource_bound "cache"))
    tight.classes

let contention_validation () =
  check_raises_invalid "empty demands" (fun () ->
      E.contention ~demands:[] ~interference:[||]);
  check_raises_invalid "matrix arity" (fun () ->
      E.contention ~demands:[ [] ] ~interference:[||]);
  check_raises_invalid "nonzero diagonal" (fun () ->
      E.contention ~demands:[ [] ] ~interference:[| [| 1. |] |]);
  check_raises_invalid "negative entry" (fun () ->
      E.contention ~demands:[ []; [] ]
        ~interference:[| [| 0.; -1. |]; [| 0.; 0. |] |]);
  check_raises_invalid "negative demand" (fun () ->
      E.contention ~demands:[ [ ("cache", -1.) ] ] ~interference:[| [| 0. |] |]);
  let g, _ = chain ~alpha:0. (5. *. U.gbps) in
  let mix = T.mix [ (T.make ~rate:1e9 ~packet_size:1500., 1.) ] in
  check_raises_invalid "unknown resource" (fun () ->
      E.mixed_traffic
        ~contention:(E.contention ~demands:[ [ ("cache", 1.) ] ] ~interference:[| [| 0. |] |])
        ~hw
        ~graph_for:(fun _ -> g)
        mix);
  check_raises_invalid "demand arity mismatch" (fun () ->
      E.mixed_traffic
        ~contention:(E.contention ~demands:[ [] ] ~interference:[| [| 0. |] |])
        ~hw
        ~graph_for:(fun _ -> g)
        (T.mix
           [
             (T.make ~rate:1e9 ~packet_size:64., 1.);
             (T.make ~rate:1e9 ~packet_size:1500., 1.);
           ]))

(* Extension #3: rate limiter *)

let rate_limiter_insertion () =
  let g, w = chain ~alpha:0.5 (5. *. U.gbps) in
  let g', limiter =
    E.insert_rate_limiter g ~before:w ~rate:(1. *. U.gbps) ~queue_capacity:4
  in
  Alcotest.(check int) "one more vertex" 4 (G.vertex_count g');
  Alcotest.(check bool) "still valid" true (Result.is_ok (G.validate g'));
  (* incoming edge re-pointed, medium usage preserved *)
  (match G.edge g' ~src:0 ~dst:limiter with
  | Some e -> check_close "alpha preserved" 0.5 e.alpha
  | None -> Alcotest.fail "edge not re-pointed");
  Alcotest.(check bool) "old edge gone" true (G.edge g' ~src:0 ~dst:w = None);
  (* the limiter caps throughput *)
  let traffic = T.make ~rate:(5. *. U.gbps) ~packet_size:1500. in
  let r = Lognic.Throughput.evaluate g' ~hw ~traffic in
  check_close "limited capacity" (1. *. U.gbps) r.capacity

let rate_limiter_end_to_end_in_sim () =
  (* Extension #3 made concrete: the rewritten graph also caps goodput
     in the packet simulator, not just in Eq 4. *)
  let g, w = chain ~alpha:0. (5. *. U.gbps) in
  let g', _ =
    E.insert_rate_limiter g ~before:w ~rate:(1. *. U.gbps) ~queue_capacity:16
  in
  let traffic = T.make ~rate:(3. *. U.gbps) ~packet_size:1500. in
  let m =
    Lognic_sim.Netsim.run_single
      ~config:
        Lognic_sim.Netsim.Config.(default |> with_horizon ~warmup:0.02 0.1)
      g' ~hw ~traffic
  in
  check_within ~pct:6. "sim goodput at the limiter's rate" (1. *. U.gbps)
    m.summary.Lognic_sim.Telemetry.throughput

let rate_limiter_validation () =
  let g, _ = chain (5. *. U.gbps) in
  check_raises_invalid "must target an IP" (fun () ->
      E.insert_rate_limiter g ~before:0 ~rate:1e9 ~queue_capacity:4)

(* Optimizer *)

let optimizer_picks_best_throughput_candidate () =
  let g, w = chain ~alpha:0. (1. *. U.gbps) in
  let traffic = T.make ~rate:(10. *. U.gbps) ~packet_size:1500. in
  let candidates = [| 1. *. U.gbps; 3. *. U.gbps; 2. *. U.gbps |] in
  let s =
    O.optimize g ~hw ~traffic
      ~knobs:[ O.Vertex_throughput (w, candidates) ]
      O.Maximize_throughput
  in
  (match s.assignment with
  | [ O.Set_throughput (id, p) ] ->
    Alcotest.(check int) "right vertex" w id;
    check_close "best candidate" (3. *. U.gbps) p
  | _ -> Alcotest.fail "unexpected assignment");
  check_close "report reflects assignment" (3. *. U.gbps)
    s.report.throughput.Lognic.Throughput.attained

let optimizer_balances_split () =
  (* 2G and 6G IPs in parallel: the throughput-optimal split is 25/75. *)
  let g = G.empty in
  let g, i = G.add_vertex ~kind:G.Ingress ~label:"in" ~service:(svc (40. *. U.gbps)) g in
  let g, x = G.add_vertex ~kind:G.Ip ~label:"x" ~service:(svc (2. *. U.gbps)) g in
  let g, y = G.add_vertex ~kind:G.Ip ~label:"y" ~service:(svc (6. *. U.gbps)) g in
  let g, e = G.add_vertex ~kind:G.Egress ~label:"out" ~service:(svc (40. *. U.gbps)) g in
  let g = G.add_edge ~delta:0.5 ~src:i ~dst:x g in
  let g = G.add_edge ~delta:0.5 ~src:i ~dst:y g in
  let g = G.add_edge ~delta:0.5 ~src:x ~dst:e g in
  let g = G.add_edge ~delta:0.5 ~src:y ~dst:e g in
  let traffic = T.make ~rate:(10. *. U.gbps) ~packet_size:1500. in
  let s =
    O.optimize g ~hw ~traffic ~knobs:[ O.Out_split i ] O.Maximize_throughput
  in
  check_within ~pct:3. "near-full capacity" (8. *. U.gbps)
    s.report.throughput.Lognic.Throughput.attained;
  (match s.assignment with
  | [ O.Set_split (_, fractions) ] ->
    let total = List.fold_left ( +. ) 0. fractions in
    let to_x = List.nth fractions 0 /. total in
    check_within ~pct:10. "2G IP gets ~25%" 0.25 to_x
  | _ -> Alcotest.fail "expected a split assignment")

let optimizer_queue_capacity_latency () =
  (* Minimizing latency subject to a throughput floor should pick a
     small-but-sufficient queue. *)
  let g, w = chain ~alpha:0. (2. *. U.gbps) in
  let traffic = T.make ~rate:(1.8 *. U.gbps) ~packet_size:1500. in
  let s =
    O.optimize g ~hw ~traffic
      ~knobs:[ O.Queue_capacity (w, 1, 64) ]
      (O.Minimize_latency_min_throughput (1.7 *. U.gbps))
  in
  Alcotest.(check bool) "feasible" true s.feasible;
  (match s.assignment with
  | [ O.Set_queue_capacity (_, n) ] ->
    Alcotest.(check bool) "small queue chosen" true (n < 64);
    Alcotest.(check bool) "not degenerate" true (n >= 2)
  | _ -> Alcotest.fail "expected queue assignment");
  Alcotest.(check bool)
    "carried above bound floor" true
    (s.report.throughput.Lognic.Throughput.attained >= 1.7 *. U.gbps)

let optimizer_infeasible_flagged () =
  let g, w = chain ~alpha:0. (1. *. U.gbps) in
  let traffic = T.make ~rate:(0.9 *. U.gbps) ~packet_size:1500. in
  let s =
    O.optimize g ~hw ~traffic
      ~knobs:[ O.Queue_capacity (w, 1, 8) ]
      (O.Minimize_latency_min_throughput (5. *. U.gbps))
  in
  Alcotest.(check bool) "cannot meet 5G on a 1G IP" false s.feasible

let optimizer_validation () =
  let g, w = chain (1. *. U.gbps) in
  let traffic = T.make ~rate:1e9 ~packet_size:1500. in
  check_raises_invalid "no knobs" (fun () ->
      O.optimize g ~hw ~traffic ~knobs:[] O.Maximize_throughput);
  check_raises_invalid "empty candidates" (fun () ->
      O.optimize g ~hw ~traffic
        ~knobs:[ O.Vertex_throughput (w, [||]) ]
        O.Maximize_throughput);
  check_raises_invalid "split on single out-edge" (fun () ->
      O.optimize g ~hw ~traffic ~knobs:[ O.Out_split w ] O.Maximize_throughput)

let optimizer_matches_exhaustive () =
  (* The optimizer's discrete search agrees with brute force. *)
  let g, w = chain ~alpha:0. (1. *. U.gbps) in
  let traffic = T.make ~rate:(2.1 *. U.gbps) ~packet_size:1500. in
  let candidates = [| 0.7e9 /. 8. *. 8.; 1.9e9; 2.2e9; 0.4e9 |] in
  let brute =
    Array.fold_left
      (fun acc p ->
        let g' = O.apply_assignment g [ O.Set_throughput (w, p) ] in
        Float.max acc (Lognic.Throughput.evaluate g' ~hw ~traffic).attained)
      0. candidates
  in
  let s =
    O.optimize g ~hw ~traffic
      ~knobs:[ O.Vertex_throughput (w, candidates) ]
      O.Maximize_throughput
  in
  check_close "agrees with brute force" brute
    s.report.throughput.Lognic.Throughput.attained

let optimizer_mixed_discrete_continuous () =
  (* one discrete knob (queue) combined with one continuous knob
     (split): the product search must find both. *)
  let g = G.empty in
  let g, i = G.add_vertex ~kind:G.Ingress ~label:"in" ~service:(svc (40. *. U.gbps)) g in
  let g, x =
    G.add_vertex ~kind:G.Ip ~label:"x"
      ~service:(svc ~queue_capacity:2 (2. *. U.gbps))
      g
  in
  let g, y =
    G.add_vertex ~kind:G.Ip ~label:"y"
      ~service:(svc ~queue_capacity:2 (6. *. U.gbps))
      g
  in
  let g, e = G.add_vertex ~kind:G.Egress ~label:"out" ~service:(svc (40. *. U.gbps)) g in
  let g = G.add_edge ~delta:0.5 ~src:i ~dst:x g in
  let g = G.add_edge ~delta:0.5 ~src:i ~dst:y g in
  let g = G.add_edge ~delta:0.5 ~src:x ~dst:e g in
  let g = G.add_edge ~delta:0.5 ~src:y ~dst:e g in
  let traffic = T.make ~rate:(7.6 *. U.gbps) ~packet_size:1500. in
  let s =
    O.optimize g ~hw ~traffic
      ~knobs:[ O.Out_split i; O.Queue_capacity (y, 2, 32) ]
      O.Maximize_throughput
  in
  (* the split must favor y and y's queue must deepen; x's queue stays
     pinned at 2 entries, so its share keeps some blocking loss and the
     optimum sits below the raw 8G capacity *)
  let carried =
    Float.min s.report.throughput.Lognic.Throughput.attained
      s.report.latency.Lognic.Latency.carried_rate
  in
  let baseline =
    let r = Lognic.Estimate.run g ~hw ~traffic in
    Float.min r.throughput.Lognic.Throughput.attained
      r.latency.Lognic.Latency.carried_rate
  in
  Alcotest.(check bool) "beats the 50/50 default" true (carried > baseline);
  Alcotest.(check bool) "carries > 6.6G" true (carried > 6.6 *. U.gbps);
  (match
     List.find_opt (function O.Set_queue_capacity _ -> true | _ -> false) s.assignment
   with
  | Some (O.Set_queue_capacity (_, n)) ->
    Alcotest.(check bool) "queue deepened" true (n > 4)
  | _ -> Alcotest.fail "queue knob not assigned")

let estimate_run_mix () =
  let g, _ = chain ~alpha:0. (5. *. U.gbps) in
  let mix =
    T.mix
      [
        (T.make ~rate:(1. *. U.gbps) ~packet_size:64., 1.);
        (T.make ~rate:(1. *. U.gbps) ~packet_size:1500., 1.);
      ]
  in
  let report = Lognic.Estimate.run_mix g ~hw ~mix in
  (* joint evaluation: the aggregate is the sum of carried class rates *)
  check_close ~tol:1e-9 "both classes carried" (2. *. U.gbps)
    report.Lognic.Extensions.throughput;
  Alcotest.(check int) "classes evaluated" 2
    (List.length report.Lognic.Extensions.classes)

let optimizer_pareto_frontier () =
  (* queue capacity trades latency (shallow) against carried throughput
     (deep) near saturation: the frontier must be monotone. *)
  let g, w = chain ~alpha:0. (2. *. U.gbps) in
  let traffic = T.make ~rate:(1.96 *. U.gbps) ~packet_size:1500. in
  let frontier =
    O.pareto ~points:6 g ~hw ~traffic ~knobs:[ O.Queue_capacity (w, 1, 64) ]
  in
  Alcotest.(check bool) "non-empty" true (List.length frontier >= 3);
  let rec check_monotone = function
    | (b1, (s1 : O.solution)) :: ((b2, s2) :: _ as rest) ->
      Alcotest.(check bool) "bounds increase" true (b1 <= b2);
      let carried (s : O.solution) =
        Float.min s.report.throughput.Lognic.Throughput.attained
          s.report.latency.Lognic.Latency.carried_rate
      in
      Alcotest.(check bool)
        "throughput non-decreasing along the frontier" true
        (carried s2 >= carried s1 -. 1e-3);
      Alcotest.(check bool)
        "solutions respect their bounds" true
        (s1.report.latency.Lognic.Latency.mean <= b1 *. 1.0001);
      check_monotone rest
    | [ (b, s) ] ->
      Alcotest.(check bool)
        "last respects bound" true
        (s.report.latency.Lognic.Latency.mean <= b *. 1.0001)
    | [] -> ()
  in
  check_monotone frontier

(* Calibration *)

let calibrate_saturation_and_knee () =
  let sweep = [| (1., 1.); (2., 2.); (3., 2.9); (4., 3.); (5., 3.01); (6., 3.) |] in
  check_close "saturation" 3.01 (Lognic.Calibrate.saturation_throughput sweep);
  check_close "knee" 4. (Lognic.Calibrate.knee_point sweep);
  check_raises_invalid "empty sweep" (fun () ->
      Lognic.Calibrate.saturation_throughput [||])

let calibrate_opaque_ip_roundtrip () =
  (* Generate data from a known curve, recover the parameters. *)
  let truth = { Lognic.Calibrate.service_time = 90e-6; capacity = 3e9; r_squared = 1. } in
  let data =
    Array.init 10 (fun i ->
        let rate = 2.8e9 *. float_of_int (i + 1) /. 10. in
        (rate, Lognic.Calibrate.opaque_ip_latency truth ~rate))
  in
  let fit = Lognic.Calibrate.fit_opaque_ip ~data in
  check_within ~pct:3. "t0" truth.service_time fit.service_time;
  check_within ~pct:3. "capacity" truth.capacity fit.capacity;
  Alcotest.(check bool) "r^2" true (fit.r_squared > 0.99);
  (* the fitted service can seed a graph vertex *)
  let service = Lognic.Calibrate.opaque_ip_service fit in
  check_within ~pct:3. "service throughput" 3e9 service.G.throughput

let calibrate_overhead_intercept () =
  let data =
    Array.init 8 (fun i ->
        let size = 512. *. float_of_int (i + 1) in
        (size, 2e-6 +. (size /. 1e9)))
  in
  let per_byte, fixed = Lognic.Calibrate.overhead_from_intercept ~data in
  check_within ~pct:1. "slope = 1/bandwidth" 1e-9 per_byte;
  check_within ~pct:1. "intercept = O" 2e-6 fixed

let optimizer_memoizes_duplicate_candidates () =
  (* Duplicate candidate values canonicalize to the same memo key, so
     the second enumeration of each must be served from the LRU. *)
  let g, w = chain ~alpha:0. (1. *. U.gbps) in
  let traffic = T.make ~rate:(2.1 *. U.gbps) ~packet_size:1500. in
  let s =
    O.optimize g ~hw ~traffic
      ~knobs:[ O.Vertex_throughput (w, [| 1e9; 2e9; 1e9; 2e9 |]) ]
      O.Maximize_throughput
  in
  Alcotest.(check bool) "evaluations counted" true (s.stats.O.evaluations >= 4);
  Alcotest.(check bool)
    "duplicate grid points hit the memo" true
    (s.stats.O.memo_hits >= 2);
  Alcotest.(check bool)
    "hits don't exceed evaluations" true
    (s.stats.O.memo_hits < s.stats.O.evaluations);
  let plain =
    O.optimize g ~hw ~traffic
      ~knobs:[ O.Vertex_throughput (w, [| 1e9; 2e9 |]) ]
      O.Maximize_throughput
  in
  check_close "result unaffected by memoization"
    plain.report.throughput.Lognic.Throughput.attained
    s.report.throughput.Lognic.Throughput.attained

let optimizer_jobs_invariant () =
  (* The whole point of ?jobs: the solution must be identical at any
     parallelism, including the continuous multi-start's rng stream. *)
  let g = G.empty in
  let g, i = G.add_vertex ~kind:G.Ingress ~label:"in" ~service:(svc (40. *. U.gbps)) g in
  let g, x = G.add_vertex ~kind:G.Ip ~label:"x" ~service:(svc ~queue_capacity:16 (2. *. U.gbps)) g in
  let g, y = G.add_vertex ~kind:G.Ip ~label:"y" ~service:(svc (6. *. U.gbps)) g in
  let g, e = G.add_vertex ~kind:G.Egress ~label:"out" ~service:(svc (40. *. U.gbps)) g in
  let g = G.add_edge ~delta:0.5 ~src:i ~dst:x g in
  let g = G.add_edge ~delta:0.5 ~src:i ~dst:y g in
  let g = G.add_edge ~delta:0.5 ~src:x ~dst:e g in
  let g = G.add_edge ~delta:0.5 ~src:y ~dst:e g in
  let traffic = T.make ~rate:(10. *. U.gbps) ~packet_size:1500. in
  let knobs = [ O.Queue_capacity (x, 2, 10); O.Out_split i ] in
  let solve jobs = O.optimize ~jobs g ~hw ~traffic ~knobs O.Maximize_throughput in
  let reference = solve 1 in
  List.iter
    (fun jobs ->
      let s = solve jobs in
      Alcotest.(check bool)
        (Printf.sprintf "identical assignment at jobs:%d" jobs)
        true
        (s.assignment = reference.assignment);
      check_close
        (Printf.sprintf "identical objective at jobs:%d" jobs)
        reference.report.throughput.Lognic.Throughput.attained
        s.report.throughput.Lognic.Throughput.attained)
    [ 2; 4 ]

let properties =
  [
    prop "optimizer never loses to the default graph"
      QCheck.(float_range 0.2 5.)
      (fun ip_gbps ->
        let g, w = chain ~alpha:0. (ip_gbps *. U.gbps) in
        let traffic = T.make ~rate:(4. *. U.gbps) ~packet_size:1500. in
        let base = (Lognic.Throughput.evaluate g ~hw ~traffic).attained in
        let s =
          O.optimize g ~hw ~traffic
            ~knobs:
              [
                O.Vertex_throughput
                  (w, [| ip_gbps *. U.gbps; 2. *. ip_gbps *. U.gbps |]);
              ]
            O.Maximize_throughput
        in
        s.report.throughput.Lognic.Throughput.attained >= base -. 1e-6);
  ]

(* ---- damped fixed point and feedback splits -------------------------- *)

let fixed_point_basics () =
  (* affine contraction x -> x/2 + 1 has the fixed point 2 *)
  let r =
    E.fixed_point ~update:(fun x -> [| (x.(0) /. 2.) +. 1. |]) [| 0. |]
  in
  Alcotest.(check bool) "converged" true r.E.fp_converged;
  check_close ~tol:1e-6 "fixed point" 2. r.E.value.(0);
  (* undamped oscillator x -> 1 - x never settles; damping 0.5 lands it
     on the fixed point 0.5 in one step *)
  let osc = E.fixed_point ~damping:1. ~max_iter:50 ~update:(fun x -> [| 1. -. x.(0) |]) [| 0. |] in
  Alcotest.(check bool) "undamped oscillation flagged" false osc.E.fp_converged;
  let damped = E.fixed_point ~damping:0.5 ~update:(fun x -> [| 1. -. x.(0) |]) [| 0. |] in
  Alcotest.(check bool) "damping tames the oscillator" true damped.E.fp_converged;
  check_close ~tol:1e-6 "oscillator fixed point" 0.5 damped.E.value.(0);
  check_raises_invalid "bad damping" (fun () ->
      ignore (E.fixed_point ~damping:0. ~update:(fun x -> x) [| 0. |]));
  check_raises_invalid "bad tol" (fun () ->
      ignore (E.fixed_point ~tol:0. ~update:(fun x -> x) [| 0. |]));
  check_raises_invalid "dimension change" (fun () ->
      ignore (E.fixed_point ~update:(fun _ -> [||]) [| 0. |]));
  check_raises_invalid "non-finite update" (fun () ->
      ignore (E.fixed_point ~update:(fun _ -> [| nan |]) [| 0. |]))

module FC = Lognic.Flowcache
module App = Lognic_apps.Flow_cache

let fc_spec =
  FC.spec ~flows:4096 ~zipf:1.0 ~emc_entries:256 ~megaflow_entries:1024 ()

let flowcache_che_sanity () =
  let p = FC.zipf_weights ~flows:1000 ~s:1.0 in
  check_close ~tol:1e-9 "zipf weights normalized" 1. (Array.fold_left ( +. ) 0. p);
  Alcotest.(check bool) "zipf descending" true (p.(0) > p.(999));
  let rates = Array.map (fun pi -> 1e6 *. pi) p in
  let agg capacity =
    let h = FC.hit_ratios ~rates ~capacity () in
    let acc = ref 0. in
    Array.iteri (fun i pi -> acc := !acc +. (pi *. h.(i))) p;
    !acc
  in
  let small = agg 50 and big = agg 500 in
  Alcotest.(check bool) "hit ratio rises with capacity" true (big > small);
  Alcotest.(check bool) "hit ratios in (0,1)" true (small > 0. && big < 1.);
  (* the whole population fits: everything hits *)
  check_close ~tol:1e-12 "fits entirely" 1. (agg 2000);
  (* a TTL strictly caps the characteristic time, so it can only lose
     hits relative to pure LRU *)
  let t = FC.che_characteristic_time ~rates ~capacity:500 in
  Alcotest.(check bool) "characteristic time positive" true (t > 0. && Float.is_finite t);
  let h_ttl = FC.hit_ratios ~ttl:(t /. 4.) ~rates ~capacity:500 () in
  let agg_ttl = ref 0. in
  Array.iteri (fun i pi -> agg_ttl := !agg_ttl +. (pi *. h_ttl.(i))) p;
  Alcotest.(check bool) "ttl only loses hits" true (!agg_ttl < big)

let flowcache_converges () =
  let g = App.graph App.default in
  let traffic = App.traffic App.default in
  let r = Lognic.Estimate.run_flowcache fc_spec g ~hw:App.hardware ~traffic in
  Alcotest.(check bool) "converged" true r.FC.converged;
  Alcotest.(check bool) "emc hit ratio in (0,1)" true
    (r.FC.emc_hit_ratio > 0. && r.FC.emc_hit_ratio < 1.);
  Alcotest.(check bool) "megaflow hit ratio in (0,1]" true
    (r.FC.megaflow_hit_ratio > 0. && r.FC.megaflow_hit_ratio <= 1.);
  let shares = List.map (fun c -> c.FC.share) r.FC.classes in
  check_close ~tol:1e-9 "class shares sum to 1" 1. (List.fold_left ( +. ) 0. shares);
  (match r.FC.classes with
  | [ hot; warm; cold ] ->
    Alcotest.(check string) "hot first" "hot" hot.FC.klass;
    Alcotest.(check string) "warm second" "warm" warm.FC.klass;
    Alcotest.(check string) "cold third" "cold" cold.FC.klass;
    check_close ~tol:1e-9 "hot share is the emc hit ratio" r.FC.emc_hit_ratio
      hot.FC.share;
    check_close ~tol:1e-9 "overall = 1 - cold share" r.FC.overall_hit_ratio
      (1. -. cold.FC.share);
    (* the slow path is strictly costlier than the caches *)
    Alcotest.(check bool) "cold mean above hot mean" true
      (cold.FC.class_mean > hot.FC.class_mean);
    Alcotest.(check bool) "p99 at or above mean per class" true
      (List.for_all (fun c -> c.FC.class_p99 >= c.FC.class_mean) r.FC.classes)
  | cs -> Alcotest.failf "expected 3 classes, got %d" (List.length cs));
  (* convergence is init-independent *)
  let r' =
    Lognic.Estimate.run_flowcache ~init:[| 0.05; 0.95 |] fc_spec g
      ~hw:App.hardware ~traffic
  in
  check_close ~tol:1e-6 "init-independent emc hit" r.FC.emc_hit_ratio
    r'.FC.emc_hit_ratio;
  check_close ~tol:1e-6 "init-independent megaflow hit" r.FC.megaflow_hit_ratio
    r'.FC.megaflow_hit_ratio

(* The documented collapse guarantee: the converged report is one plain
   evaluation of the converged graph, bit for bit. *)
let flowcache_collapse_bitforbit () =
  let g = App.graph App.default in
  let traffic = App.traffic App.default in
  let r = Lognic.Estimate.run_flowcache fc_spec g ~hw:App.hardware ~traffic in
  let emc = (Option.get (G.find_vertex g ~label:"emc")).G.id in
  let mega = (Option.get (G.find_vertex g ~label:"megaflow")).G.id in
  let static =
    let g = G.scale_out_split g emc [ r.FC.emc_hit_ratio; 1. -. r.FC.emc_hit_ratio ] in
    G.scale_out_split g mega
      [ r.FC.megaflow_hit_ratio; 1. -. r.FC.megaflow_hit_ratio ]
  in
  let est = Lognic.Estimate.run static ~hw:App.hardware ~traffic in
  let bits = Int64.bits_of_float in
  Alcotest.(check int64) "attained bit-identical"
    (bits est.Lognic.Estimate.throughput.Lognic.Throughput.attained)
    (bits r.FC.throughput.Lognic.Throughput.attained);
  Alcotest.(check int64) "capacity bit-identical"
    (bits est.Lognic.Estimate.throughput.Lognic.Throughput.capacity)
    (bits r.FC.throughput.Lognic.Throughput.capacity);
  Alcotest.(check int64) "mean latency bit-identical"
    (bits est.Lognic.Estimate.latency.Lognic.Latency.mean)
    (bits r.FC.latency.Lognic.Latency.mean);
  Alcotest.(check int64) "carried rate bit-identical"
    (bits est.Lognic.Estimate.latency.Lognic.Latency.carried_rate)
    (bits r.FC.latency.Lognic.Latency.carried_rate)

let flowcache_validation () =
  check_raises_invalid "flows >= 1" (fun () -> ignore (FC.spec ~flows:0 ()));
  check_raises_invalid "zipf finite" (fun () ->
      ignore (FC.spec ~flows:10 ~zipf:nan ()));
  check_raises_invalid "ttl > 0" (fun () ->
      ignore (FC.spec ~flows:10 ~ttl:0. ()));
  let g, _ = chain (5. *. U.gbps) in
  let traffic = T.make ~rate:(2. *. U.gbps) ~packet_size:1500. in
  (* no vertex labelled "emc" in the plain chain *)
  check_raises_invalid "missing cache vertex" (fun () ->
      ignore (Lognic.Estimate.run_flowcache fc_spec g ~hw ~traffic));
  (* an "emc" vertex without two out-edges is rejected too *)
  let g2, _ =
    let g = G.empty in
    let g, i = G.add_vertex ~kind:G.Ingress ~label:"in" ~service:(svc (40. *. U.gbps)) g in
    let g, w = G.add_vertex ~kind:G.Ip ~label:"emc" ~service:(svc (5. *. U.gbps)) g in
    let g, e = G.add_vertex ~kind:G.Egress ~label:"out" ~service:(svc (40. *. U.gbps)) g in
    let g = G.add_edge ~src:i ~dst:w g in
    (G.add_edge ~src:w ~dst:e g, w)
  in
  check_raises_invalid "cache vertex needs 2 out-edges" (fun () ->
      ignore (Lognic.Estimate.run_flowcache fc_spec g2 ~hw ~traffic))

let suite =
  [
    quick "consolidate: single tenant" consolidate_single_equals_direct;
    quick "consolidate: contention" consolidate_contention_degrades;
    quick "consolidate: disjoint tenants" consolidate_disjoint_resources_compose;
    quick "mixed traffic: weighted average" mixed_traffic_weighted_average;
    quick "mixed traffic: per-size graphs" mixed_traffic_size_dependent_graphs;
    quick "mixed traffic: single-class limit" mixed_traffic_single_class_limit;
    quick "mixed traffic: joint capacity split" mixed_traffic_joint_shares_capacity;
    quick "mixed traffic: joint latency >= solo" mixed_traffic_joint_latency_exceeds_solo;
    quick "contention: slowdown and resource caps" mixed_traffic_contention_slowdown;
    quick "contention: validation" contention_validation;
    quick "rate limiter: insertion" rate_limiter_insertion;
    quick "rate limiter: end-to-end in sim" rate_limiter_end_to_end_in_sim;
    quick "rate limiter: validation" rate_limiter_validation;
    quick "optimizer: discrete candidates" optimizer_picks_best_throughput_candidate;
    quick "optimizer: continuous split" optimizer_balances_split;
    quick "optimizer: queue capacity under constraint" optimizer_queue_capacity_latency;
    quick "optimizer: infeasibility flagged" optimizer_infeasible_flagged;
    quick "optimizer: knob validation" optimizer_validation;
    quick "optimizer: matches exhaustive search" optimizer_matches_exhaustive;
    quick "optimizer: mixed discrete+continuous" optimizer_mixed_discrete_continuous;
    quick "optimizer: memoizes duplicate candidates" optimizer_memoizes_duplicate_candidates;
    quick "optimizer: identical at any job count" optimizer_jobs_invariant;
    quick "estimate: run_mix" estimate_run_mix;
    quick "optimizer: pareto frontier" optimizer_pareto_frontier;
    quick "calibrate: saturation and knee" calibrate_saturation_and_knee;
    quick "calibrate: opaque IP round trip" calibrate_opaque_ip_roundtrip;
    quick "calibrate: overhead intercept" calibrate_overhead_intercept;
    quick "fixed point: basics and validation" fixed_point_basics;
    quick "flowcache: che solver sanity" flowcache_che_sanity;
    quick "flowcache: fixed point converges" flowcache_converges;
    quick "flowcache: collapses to the static split" flowcache_collapse_bitforbit;
    quick "flowcache: validation" flowcache_validation;
  ]
  @ properties
